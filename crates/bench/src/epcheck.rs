//! Deterministic `epcheck` report text: every shipped EP ISR run
//! through the `ulp-verify` static checker, plus a deliberately broken
//! fixture suite that exercises every diagnostic class.
//!
//! The `epcheck` binary prints these reports; `tests/golden.rs` pins
//! them byte-for-byte, and the cross-validation suite in
//! `crates/verify/tests/` reproduces each fixture finding as a dynamic
//! fault or bus-lint observation in the simulator.

use ulp_apps::ulp::{self, stages, AppStage, MonitoringConfig, SamplePeriod, UlpProgram};
use ulp_core::map;
use ulp_isa::ep::{encode_program, ComponentId, Instruction as I};
use ulp_verify::{check_isr, CheckContext, PowerState, Report};

fn cid(id: u8) -> ComponentId {
    ComponentId::new(id).expect("component ids are 5-bit")
}

/// The shipped programs linted by `epcheck` with no arguments, in
/// report order.
pub fn shipped_programs() -> Vec<(&'static str, UlpProgram)> {
    vec![
        ("stage1", stages::app1(SamplePeriod::Cycles(2000))),
        ("stage2", stages::app2(SamplePeriod::Cycles(2000), 50)),
        ("stage3", stages::app3(SamplePeriod::Cycles(50_000), 0)),
        ("stage4", stages::app4(SamplePeriod::Cycles(10_000), 10)),
        (
            "stage1-batched",
            ulp::monitoring(&MonitoringConfig {
                stage: AppStage::SampleSend,
                period: SamplePeriod::Cycles(1000),
                samples_per_packet: 5,
                threshold: 0,
            }),
        ),
        (
            "stage1-chained",
            stages::app1(SamplePeriod::Chained {
                base: 10_000,
                count: 700,
            }),
        ),
        ("blink", ulp::blink(500)),
        ("sense", ulp::sense(500)),
    ]
}

/// Check every shipped program; returns `(label, reports)` per program.
pub fn shipped_reports() -> Vec<(&'static str, Vec<Report>)> {
    shipped_programs()
        .into_iter()
        .map(|(label, prog)| (label, prog.check()))
        .collect()
}

/// The deliberately broken fixture ISRs, one per diagnostic class (plus
/// a clean control). Each entry is `(context, image)`; the context name
/// doubles as the fixture name.
pub fn fixtures() -> Vec<(CheckContext, Vec<u8>)> {
    let sensor = map::Component::Sensor as u8;
    let msgproc = map::Component::MsgProc as u8;
    let mut out: Vec<(CheckContext, Vec<u8>)> = Vec::new();

    // Control: the Figure 5 sample ISR, clean.
    out.push((
        CheckContext::system_reset("clean-control")
            .with_irq(map::Irq::Timer0.id())
            .with_isr_addr(0x0200)
            .with_budget(1000)
            .allow_left_on(msgproc),
        encode_program(&[
            I::SwitchOn(cid(sensor)),
            I::Read(map::SENSOR_BASE + map::SENSOR_DATA),
            I::SwitchOff(cid(sensor)),
            I::SwitchOn(cid(msgproc)),
            I::Write(map::MSG_BASE + map::MSG_SAMPLE_IN),
            I::WriteI {
                addr: map::MSG_BASE + map::MSG_CTRL,
                value: 1,
            },
            I::Terminate,
        ])
        .unwrap(),
    ));

    // powered-off-access: reads the message processor without waking it.
    out.push((
        CheckContext::system_reset("powered-off-read").with_isr_addr(0x0200),
        encode_program(&[I::Read(map::MSG_BASE + map::MSG_STATUS), I::Terminate]).unwrap(),
    ));

    // unknown-power-access: the caller cannot prove the sensor's state.
    out.push((
        CheckContext::system_reset("unknown-power-read")
            .with_isr_addr(0x0200)
            .assume(sensor, PowerState::Unknown),
        encode_program(&[I::Read(map::SENSOR_BASE + map::SENSOR_DATA), I::Terminate]).unwrap(),
    ));

    // redundant-switch: double SWITCHON of the sensor.
    out.push((
        CheckContext::system_reset("double-switchon").with_isr_addr(0x0200),
        encode_program(&[
            I::SwitchOn(cid(sensor)),
            I::SwitchOn(cid(sensor)),
            I::Read(map::SENSOR_BASE + map::SENSOR_DATA),
            I::SwitchOff(cid(sensor)),
            I::Terminate,
        ])
        .unwrap(),
    ));

    // left-on-at-exit: wakes the sensor and forgets it.
    out.push((
        CheckContext::system_reset("sensor-left-on").with_isr_addr(0x0200),
        encode_program(&[
            I::SwitchOn(cid(sensor)),
            I::Read(map::SENSOR_BASE + map::SENSOR_DATA),
            I::Terminate,
        ])
        .unwrap(),
    ));

    // read-only-write: the timer count register is hardware-latched.
    out.push((
        CheckContext::system_reset("write-to-counter").with_isr_addr(0x0200),
        encode_program(&[
            I::WriteI {
                addr: map::TIMER_BASE + map::TIMER_COUNT_LO,
                value: 0,
            },
            I::Terminate,
        ])
        .unwrap(),
    ));

    // unmapped-access: a hole between memory and the device file.
    out.push((
        CheckContext::system_reset("read-from-hole").with_isr_addr(0x0200),
        encode_program(&[I::Read(0x0900), I::Terminate]).unwrap(),
    ));

    // transfer-bounds: 32 bytes into the radio TX buffer at offset 8
    // overruns the 32-byte buffer.
    out.push((
        CheckContext::system_reset("transfer-overrun")
            .with_isr_addr(0x0200)
            .assume(msgproc, PowerState::On)
            .assume(map::Component::Radio as u8, PowerState::On),
        encode_program(&[
            I::Transfer {
                src: map::MSG_TX_BUF,
                dst: map::RADIO_TX_BUF + 8,
                len: 32,
            },
            I::Terminate,
        ])
        .unwrap(),
    ));

    // bad-power-target: component id 7 is unassigned.
    out.push((
        CheckContext::system_reset("switch-unassigned").with_isr_addr(0x0200),
        encode_program(&[I::SwitchOn(cid(7)), I::Terminate]).unwrap(),
    ));

    // isr-bank-gated: the ISR gates the bank holding its own code.
    out.push((
        CheckContext::system_reset("self-gating").with_isr_addr(0x0200),
        encode_program(&[
            I::SwitchOff(cid(map::Component::mem_bank(2))),
            I::Terminate,
        ])
        .unwrap(),
    ));

    // vector-overlap: the image is loaded over the vector tables.
    out.push((
        CheckContext::system_reset("loads-over-vectors").with_isr_addr(0x0040),
        encode_program(&[I::Terminate]).unwrap(),
    ));

    // missing-terminator: execution runs off the end of the image.
    out.push((
        CheckContext::system_reset("runs-off-the-end").with_isr_addr(0x0200),
        encode_program(&[I::Read(map::TIMER_BASE + map::TIMER_COUNT_LO)]).unwrap(),
    ));

    // trailing-bytes: dead footprint after the terminator.
    out.push((CheckContext::system_reset("dead-tail").with_isr_addr(0x0200), {
        let mut bytes = encode_program(&[I::Terminate]).unwrap();
        bytes.extend([0x00, 0x00, 0x00]);
        bytes
    }));

    // wcet-overrun: a transfer-heavy ISR against a 10-cycle budget.
    out.push((
        CheckContext::system_reset("blows-the-budget")
            .with_isr_addr(0x0200)
            .with_budget(10)
            .assume(msgproc, PowerState::On)
            .assume(map::Component::Radio as u8, PowerState::On),
        encode_program(&[
            I::Transfer {
                src: map::MSG_TX_BUF,
                dst: map::RADIO_TX_BUF,
                len: 8,
            },
            I::Terminate,
        ])
        .unwrap(),
    ));

    out
}

/// Check every fixture; returns one report per fixture, in order.
pub fn fixture_reports() -> Vec<Report> {
    fixtures()
        .iter()
        .map(|(ctx, bytes)| check_isr(bytes, ctx))
        .collect()
}

/// Render the shipped-program reports as the `epcheck` text.
pub fn render_shipped() -> String {
    let mut out = String::from("epcheck: shipped event-processor programs\n\n");
    let mut errors = 0;
    let mut warnings = 0;
    for (label, reports) in shipped_reports() {
        out.push_str(&format!("== {label} ==\n"));
        for report in &reports {
            out.push_str(&report.render());
            errors += report.errors();
            warnings += report.warnings();
        }
        out.push('\n');
    }
    out.push_str(&format!(
        "total: {errors} error{}, {warnings} warning{}\n",
        if errors == 1 { "" } else { "s" },
        if warnings == 1 { "" } else { "s" },
    ));
    out
}

/// Render the fixture reports as the `epcheck --fixture` text.
pub fn render_fixture() -> String {
    let mut out = String::from("epcheck: diagnostic fixture suite\n\n");
    for report in fixture_reports() {
        out.push_str(&report.render());
        out.push('\n');
    }
    out
}

/// Total error-severity findings across the shipped programs (the
/// binary's exit status: shipped programs must be clean).
pub fn shipped_errors() -> usize {
    shipped_reports()
        .iter()
        .flat_map(|(_, reports)| reports)
        .map(|r| r.errors())
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ulp_verify::DiagClass;

    #[test]
    fn shipped_programs_are_clean() {
        assert_eq!(shipped_errors(), 0);
        for (label, reports) in shipped_reports() {
            for report in reports {
                assert!(report.is_clean(), "{label}/{}", report.name);
            }
        }
    }

    #[test]
    fn fixtures_cover_every_diagnostic_class() {
        use std::collections::BTreeSet;
        let mut seen = BTreeSet::new();
        for report in fixture_reports() {
            for diag in &report.diags {
                seen.insert(diag.class.code());
            }
        }
        let all = [
            DiagClass::PoweredOffAccess,
            DiagClass::UnknownPowerAccess,
            DiagClass::RedundantSwitch,
            DiagClass::LeftOnAtExit,
            DiagClass::ReadOnlyWrite,
            DiagClass::UnmappedAccess,
            DiagClass::TransferBounds,
            DiagClass::BadPowerTarget,
            DiagClass::IsrBankGated,
            DiagClass::VectorOverlap,
            DiagClass::MissingTerminator,
            DiagClass::TrailingBytes,
            DiagClass::WcetOverrun,
        ];
        for class in all {
            assert!(
                seen.contains(class.code()),
                "no fixture exercises {}",
                class.code()
            );
        }
    }

    #[test]
    fn fixture_names_are_unique() {
        let mut names: Vec<String> = fixtures().iter().map(|(c, _)| c.name.clone()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), fixtures().len());
    }

    #[test]
    fn reports_render_deterministically() {
        assert_eq!(render_shipped(), render_shipped());
        assert_eq!(render_fixture(), render_fixture());
    }
}
