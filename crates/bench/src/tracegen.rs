//! Deterministic telemetry exports for the `trace` dumper binary and the
//! golden tests.
//!
//! Each generator runs one of the repository's reference workloads with
//! tracing and telemetry enabled and returns the three byte-stable
//! artifacts the observability layer produces: a Chrome/Perfetto
//! trace-event JSON document, a CSV timeline, and a metrics summary
//! table. Same seed, same horizon ⇒ byte-identical output — that is
//! asserted by `tests/determinism.rs` and re-checked by the binary's
//! `--check` flag on every `scripts/verify.sh` run.

use std::fmt::Write as _;

use ulp_apps::mica as mapps;
use ulp_apps::ulp::{monitoring, stages, AppStage, MonitoringConfig, SamplePeriod};
use ulp_core::slaves::RandomWalkSensor;
use ulp_core::{System, SystemConfig};
use ulp_mica::io::CPU_HZ;
use ulp_net::{Frame, Medium, MediumConfig, NetEventKind};
use ulp_sim::telemetry::csv_timeline;
use ulp_sim::{ChromeTrace, Cycles, Engine, Metrics, PerfSnapshot, Profiler, Simulatable, StepOutcome};
use ulp_testkit::Rng;

/// Perfetto process id of the host-perf counter track appended by
/// [`run_perf`] (the guest machine keeps its usual pids).
const PERF_PID: u32 = 9;

/// The three artifacts a telemetry run exports.
#[derive(Debug, Clone)]
pub struct TraceExport {
    /// Chrome trace-event JSON (open in `chrome://tracing` / Perfetto).
    pub json: String,
    /// CSV timeline of the raw event stream.
    pub csv: String,
    /// Fixed-width metrics summary table.
    pub summary: String,
}

/// Default simulation horizon per app, in the unit `run` expects
/// (cycles for `stage4`/`mica2`, co-sim slots for `net`).
pub fn default_horizon(app: &str) -> u64 {
    match app {
        "stage4" => 250_000,
        "mica2" => 400_000,
        "net" => 60_000,
        other => panic!("unknown app `{other}`"),
    }
}

/// Default seed per app (the same seeds the determinism suite pins).
pub fn default_seed(app: &str) -> u64 {
    match app {
        "stage4" => 0xD5,
        "mica2" => 0x515E,
        "net" => 7,
        other => panic!("unknown app `{other}`"),
    }
}

/// Dispatch by app name (`stage4`, `mica2`, or `net`).
///
/// # Panics
///
/// Panics on an unknown app name.
pub fn run(app: &str, horizon: u64, seed: u64) -> TraceExport {
    match app {
        "stage4" => stage4(horizon, seed),
        "mica2" => mica2(horizon, seed),
        "net" => net(horizon, seed),
        other => panic!("unknown app `{other}` (expected stage4|mica2|net)"),
    }
}

/// [`run`] with host-side profiling: the engine (and, for `stage4`, the
/// system) runs with a [`Profiler`] attached, the deterministic counter
/// samples become a Perfetto counter track appended to the guest trace
/// JSON, and the returned [`PerfSnapshot`] carries the span statistics
/// plus guest-derived counters. The CSV and summary artifacts are
/// byte-identical to the unprofiled [`run`] (no observer effect); only
/// the JSON gains the extra (deterministic) counter track.
///
/// # Panics
///
/// Panics for `net`, which steps its nodes manually rather than through
/// an [`Engine`] and therefore has no host phases to attribute.
pub fn run_perf(app: &str, horizon: u64, seed: u64) -> (TraceExport, PerfSnapshot) {
    let profiler = Profiler::new();
    let export = match app {
        "stage4" => stage4_run(horizon, seed, Some(&profiler)),
        "mica2" => mica2_run(horizon, seed, Some(&profiler)),
        other => panic!("app `{other}` does not support --perf (expected stage4|mica2)"),
    };
    let snapshot = profiler.snapshot();
    (export, snapshot)
}

/// The paper's stage-4 monitoring application on the ULP architecture,
/// with mixed inbound traffic (data, a duplicate, and a reconfiguration
/// command) racing the send chains — the same workload the determinism
/// suite double-runs.
pub fn stage4(cycles: u64, seed: u64) -> TraceExport {
    stage4_run(cycles, seed, None)
}

fn stage4_run(cycles: u64, seed: u64, profiler: Option<&Profiler>) -> TraceExport {
    let prog = stages::app4(SamplePeriod::Cycles(2_000), 40);
    let mut sys = prog.build_system(
        SystemConfig::default(),
        Box::new(RandomWalkSensor::new(128, seed)),
    );
    sys.trace_mut().set_enabled(true);
    sys.set_telemetry(true);
    if let Some(p) = profiler {
        sys.set_profiler(p);
    }
    for (i, at) in [3_000u64, 9_500, 9_500, 41_000].iter().enumerate() {
        let f = if i == 3 {
            Frame::command(0x22, 0x0009, 0x0001, 9, &[2, 60, 0]).unwrap()
        } else {
            Frame::data(0x22, 0x0009, 0x0001, 7, &[i as u8]).unwrap()
        };
        sys.schedule_rx(Cycles(*at), f.encode());
    }
    let mut engine = Engine::new(sys);
    if let Some(p) = profiler {
        engine.set_profiler(p);
    }
    engine.set_epoch(Cycles(4_096));
    engine.run_for(Cycles(cycles));
    let sys = engine.into_machine();
    assert!(sys.fault().is_none(), "stage-4 run faulted: {:?}", sys.fault());

    let hz = sys.config().clock.hz();
    let mut ct = ChromeTrace::new();
    ct.add_machine(1, "ulp stage-4 node", sys.trace(), hz);
    let metrics = sys.telemetry_snapshot();
    if let Some(p) = profiler {
        crate::perf::attach_guest_counters(p, &sys);
        p.snapshot()
            .add_counter_track(&mut ct, PERF_PID, "host perf (deterministic)", hz);
    }
    TraceExport {
        json: ct.finish(),
        csv: csv_timeline(sys.trace(), hz),
        summary: metrics.summary(),
    }
}

/// The Mica2 baseline board running the sample-and-threshold app
/// (`mapps::app2`), ADC fed from the seeded PRNG.
pub fn mica2(cycles: u64, seed: u64) -> TraceExport {
    mica2_run(cycles, seed, None)
}

fn mica2_run(cycles: u64, seed: u64, profiler: Option<&Profiler>) -> TraceExport {
    let app = mapps::app2(1, 100);
    let mut rng = Rng::from_seed(seed);
    let (mut board, _) = app.board(Box::new(move |_| rng.next_u64() as u8));
    board.trace_mut().set_enabled(true);
    board.set_telemetry(true);
    let mut engine = Engine::new(board);
    if let Some(p) = profiler {
        engine.set_profiler(p);
        // The Mica2 board has no epoch hook configured here, so the
        // counter track samples come from the engine only if epochs are
        // on; enable them for the profiled run's counter track.
        engine.set_epoch(Cycles(16_384));
    }
    engine.run_until_cycle(Cycles(cycles));
    let board = engine.into_machine();
    assert!(!board.halted(), "mica2 runtime loop must keep spinning");

    let mut ct = ChromeTrace::new();
    ct.add_machine(1, "mica2 baseline board", board.trace(), CPU_HZ);
    let metrics = board.metrics_snapshot();
    if let Some(p) = profiler {
        p.counter_add("guest.cycles", board.now().0);
        crate::perf::attach_trace_counters(p, board.trace());
        p.snapshot()
            .add_counter_track(&mut ct, PERF_PID, "host perf (deterministic)", CPU_HZ);
    }
    TraceExport {
        json: ct.finish(),
        csv: csv_timeline(board.trace(), CPU_HZ),
        summary: metrics.summary(),
    }
}

/// Four forwarding ULP nodes flooding towards a listening base station
/// through a 10%-loss medium (the co-simulation of
/// `tests/determinism.rs` / `examples/multihop.rs`), with the medium
/// event log enabled. One Perfetto process per node plus one for the
/// shared medium; the summary merges every node's telemetry into a
/// fleet-wide registry alongside the channel counters.
pub fn net(horizon: u64, seed: u64) -> TraceExport {
    const SLOT_US: u64 = 10;
    let mut medium = Medium::new(MediumConfig {
        loss_probability: 0.1,
        propagation_delay_us: 30,
        seed,
    });
    medium.set_event_log(true);
    let mut nodes: Vec<(usize, System)> = (0..4u16)
        .map(|i| {
            let program = monitoring(&MonitoringConfig {
                stage: AppStage::Forwarding,
                period: SamplePeriod::Cycles(if i == 0 { 9_000 } else { 40_000 }),
                samples_per_packet: 1,
                threshold: 0,
            });
            let config = SystemConfig {
                address: 2 + i,
                dest: 0x0000,
                ..SystemConfig::default()
            };
            let mut sys =
                program.build_system(config, Box::new(RandomWalkSensor::new(90, seed ^ i as u64)));
            sys.trace_mut().set_enabled(true);
            sys.set_telemetry(true);
            (medium.register(), sys)
        })
        .collect();
    let base = medium.register();
    for cycle in 1..=horizon {
        let now_us = cycle * SLOT_US;
        for (endpoint, node) in nodes.iter_mut() {
            for d in medium.poll(*endpoint, now_us) {
                node.schedule_rx(Cycles(cycle + 1), d.bytes);
            }
            if node.now() < Cycles(cycle) {
                let outcome = node.step();
                assert!(!matches!(outcome, StepOutcome::Halted), "node halted");
            }
            for (at, bytes) in node.take_outbox() {
                medium.transmit(*endpoint, at.0 * SLOT_US, &bytes);
            }
        }
        let _ = medium.poll(base, now_us); // the base station just listens
    }

    let hz = nodes[0].1.config().clock.hz();
    let mut ct = ChromeTrace::new();
    // Process 1: the shared medium, one track per endpoint.
    ct.meta_process(1, "medium (10% loss)");
    for ep in 0..medium.endpoints() {
        let label = if ep == base {
            "base station".to_string()
        } else {
            format!("node {ep}")
        };
        ct.meta_thread(1, ep as u32 + 1, &label);
    }
    let mut csv = String::from("t_us,endpoint,event,from,len\n");
    for ev in medium.events() {
        let (name, from) = match ev.kind {
            NetEventKind::Sent => (format!("tx len={}", ev.len), String::new()),
            NetEventKind::Delivered { from } => {
                (format!("rx from={from} len={}", ev.len), from.to_string())
            }
            NetEventKind::Lost { from } => {
                (format!("lost from={from} len={}", ev.len), from.to_string())
            }
        };
        ct.instant(1, ev.endpoint as u32 + 1, ev.at_us as f64, "medium", &name);
        let kind = match ev.kind {
            NetEventKind::Sent => "sent",
            NetEventKind::Delivered { .. } => "delivered",
            NetEventKind::Lost { .. } => "lost",
        };
        let _ = writeln!(csv, "{},{},{kind},{from},{}", ev.at_us, ev.endpoint, ev.len);
    }
    // Processes 2..: one per node, from its own trace buffer.
    let mut fleet = Metrics::new();
    for (idx, (_, node)) in nodes.iter().enumerate() {
        ct.add_machine(idx as u32 + 2, &format!("node {idx}"), node.trace(), hz);
        fleet.merge(&node.telemetry_snapshot());
    }
    let stats = medium.stats();
    fleet.counter_add("net.sent", stats.sent);
    fleet.counter_add("net.delivered", stats.delivered);
    fleet.counter_add("net.lost", stats.lost);
    TraceExport {
        json: ct.finish(),
        csv,
        summary: fleet.summary(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ulp_sim::telemetry::validate_json;

    #[test]
    fn stage4_export_is_valid_and_deterministic() {
        let a = stage4(60_000, 0xD5);
        let b = stage4(60_000, 0xD5);
        assert_eq!(a.json, b.json);
        assert_eq!(a.csv, b.csv);
        assert_eq!(a.summary, b.summary);
        validate_json(&a.json).expect("valid JSON");
        assert!(a.summary.contains("irq.service_latency"));
        assert!(a.csv.starts_with("cycle,t_us,component,event\n"));
    }

    #[test]
    fn mica2_export_is_valid_and_deterministic() {
        let a = mica2(120_000, 0x515E);
        let b = mica2(120_000, 0x515E);
        assert_eq!(a.json, b.json);
        assert_eq!(a.summary, b.summary);
        validate_json(&a.json).expect("valid JSON");
        assert!(a.summary.contains("mcu.wake_latency"));
    }

    #[test]
    fn net_export_is_valid_and_deterministic() {
        let a = net(30_000, 7);
        let b = net(30_000, 7);
        assert_eq!(a.json, b.json);
        assert_eq!(a.csv, b.csv);
        assert_eq!(a.summary, b.summary);
        validate_json(&a.json).expect("valid JSON");
        assert!(a.summary.contains("net.sent"));
        assert!(a.csv.starts_with("t_us,endpoint,event,from,len\n"));
    }
}
