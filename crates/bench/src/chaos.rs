//! Deterministic chaos campaign: seed-replicated fault-injection grids.
//!
//! The paper's architecture is built to *degrade*, not to fail: one-deep
//! interrupt latches drop events under overload (§4.2.4), power gating
//! bounds the damage a glitch can do, and the event processor owns the
//! bus only while an ISR runs. This module turns that claim into a
//! measured quantity. Each [`ChaosConfig`] — application stage ×
//! fault rate × seed — builds one system, installs a seed-derived
//! [`FaultPlan`] (bit flips, stuck
//! handshakes, dropped/spurious interrupts, radio byte errors,
//! brownouts), runs it to a fixed horizon, and *asserts the
//! graceful-degradation invariants inline*:
//!
//! 1. **No silent wedge** — if the run halts, a typed
//!    `SystemFault` must be recorded;
//! 2. **Fault-or-recover** — a surviving system drains back to
//!    quiescence within a bounded recovery budget;
//! 3. **Loud loss** — interrupt-event conservation holds:
//!    `raised == taken + fault_cleared + still_pending`, and every
//!    injected fault is tallied with a disposition
//!    (`injected == absorbed + degraded + fatal`);
//! 4. **Paired trace** — every `FaultInjected` trace event has its
//!    `FaultAbsorbed` disposition partner (checked whenever the trace
//!    buffer did not overflow);
//! 5. **Monotonic energy** — the energy meter never runs backwards,
//!    faults or not.
//!
//! A violated invariant panics with the offending scenario's details;
//! the fleet engine's per-point `catch_unwind` then reports exactly
//! which grid coordinates broke, so a thousand-point campaign pinpoints
//! the bad (app, rate, seed) immediately. The campaign summary
//! ([`campaign_summary`]) is a pure function of the grid and is pinned
//! byte-for-byte by `tests/golden.rs`.

use crate::fleet::{Cell, Coords, Sweep, SweepResults};
use ulp_apps::ulp::{monitoring, AppStage, MonitoringConfig, SamplePeriod};
use ulp_core::slaves::RandomWalkSensor;
use ulp_core::{System, SystemConfig};
use ulp_sim::fault::FaultPlan;
use ulp_sim::{Cycles, Engine, Simulatable, TraceKind};

/// Which application family a chaos point runs (a subset of the §6.1.2
/// stages that exercises progressively more hardware).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosApp {
    /// Stage 1: sample-and-send (timer, sensor, msgproc, radio).
    Sample,
    /// Stage 2: adds the threshold filter.
    Filtered,
    /// Stage 3: adds receive-and-forward (radio listening).
    Forwarding,
}

impl ChaosApp {
    /// Parse a CLI name (`app1`/`app2`/`app3`).
    pub fn parse(s: &str) -> Option<ChaosApp> {
        match s {
            "app1" => Some(ChaosApp::Sample),
            "app2" => Some(ChaosApp::Filtered),
            "app3" => Some(ChaosApp::Forwarding),
            _ => None,
        }
    }

    /// The CLI / CSV name.
    pub fn name(&self) -> &'static str {
        match self {
            ChaosApp::Sample => "app1",
            ChaosApp::Filtered => "app2",
            ChaosApp::Forwarding => "app3",
        }
    }

    fn stage(&self) -> AppStage {
        match self {
            ChaosApp::Sample => AppStage::SampleSend,
            ChaosApp::Filtered => AppStage::Filtered,
            ChaosApp::Forwarding => AppStage::Forwarding,
        }
    }
}

/// One chaos grid point.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosConfig {
    /// Application stage under test.
    pub app: ChaosApp,
    /// Expected injected faults per simulated cycle (`rate × horizon`
    /// faults per run, rounded; `0.0` is the fault-free baseline).
    pub fault_rate: f64,
    /// Seed deriving the fault plan *and* the sensor walk.
    pub seed: u64,
    /// Simulation horizon, cycles.
    pub horizon: u64,
    /// Extra cycles a surviving system gets to drain back to
    /// quiescence after the horizon (invariant 2).
    pub recovery_budget: u64,
}

impl Default for ChaosConfig {
    fn default() -> ChaosConfig {
        ChaosConfig {
            app: ChaosApp::Filtered,
            fault_rate: 1e-3,
            seed: 0,
            horizon: 30_000,
            recovery_budget: 20_000,
        }
    }
}

impl ChaosConfig {
    /// Canonical description of everything that determines this point's
    /// result, for the campaign store's content address
    /// (`ulp_bench::store::canonical_key`). Covers *all* fields — the
    /// sweep coordinates only expose app/rate/seed, but the horizon and
    /// recovery budget change the verdicts just as surely.
    pub fn store_key(&self) -> String {
        format!(
            "chaos:app={};rate={};seed={};horizon={};recovery={}",
            self.app.name(),
            self.fault_rate,
            self.seed,
            self.horizon,
            self.recovery_budget
        )
    }
}

/// Scalar summary of one chaos point: one CSV row per grid point.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosSummary {
    /// Faults injected (== scheduled, fast-forward never skips one).
    pub injected: u64,
    /// Faults that hit inert state.
    pub absorbed: u64,
    /// Faults that perturbed live state without stopping the machine.
    pub degraded: u64,
    /// Faults fatal at injection time (long brownouts).
    pub fatal: u64,
    /// Interrupt events raised.
    pub raised: u64,
    /// Interrupt events serviced.
    pub taken: u64,
    /// Interrupt events dropped by one-deep overload (§4.2.4).
    pub overload_dropped: u64,
    /// Pending interrupt edges lost to injected faults.
    pub fault_cleared: u64,
    /// Frames the radio pushed out.
    pub sent: u64,
    /// Frames that failed MAC decode at the observer (radio byte
    /// errors land here).
    pub corrupt: u64,
    /// 1 if the run ended halted (with a recorded fault), else 0.
    pub halted: u64,
    /// Total energy, joules.
    pub energy_j: f64,
}

/// The metric columns of one chaos point, in [`cells`] order.
pub const METRICS: &[&str] = &[
    "injected",
    "absorbed",
    "degraded",
    "fatal",
    "raised",
    "taken",
    "overload_dropped",
    "fault_cleared",
    "sent",
    "corrupt",
    "halted",
    "energy_j",
];

/// Serialize a summary into one row of [`METRICS`] cells.
pub fn cells(s: &ChaosSummary) -> Vec<Cell> {
    vec![
        Cell::U64(s.injected),
        Cell::U64(s.absorbed),
        Cell::U64(s.degraded),
        Cell::U64(s.fatal),
        Cell::U64(s.raised),
        Cell::U64(s.taken),
        Cell::U64(s.overload_dropped),
        Cell::U64(s.fault_cleared),
        Cell::U64(s.sent),
        Cell::U64(s.corrupt),
        Cell::U64(s.halted),
        Cell::F64(s.energy_j),
    ]
}

fn build_system(cfg: &ChaosConfig) -> System {
    let prog = monitoring(&MonitoringConfig {
        stage: cfg.app.stage(),
        period: SamplePeriod::Cycles(2_000),
        samples_per_packet: 1,
        threshold: 64,
    });
    prog.build_system(
        SystemConfig::default(),
        Box::new(RandomWalkSensor::new(100, cfg.seed ^ 0x9E37_79B9_7F4A_7C15)),
    )
}

/// Run one chaos grid point, asserting the graceful-degradation
/// invariants along the way. Deterministic: the summary is a pure
/// function of `cfg` (double-run asserted in `tests/chaos.rs`,
/// thread-count invariance by the chaos binary's `--check` mode).
///
/// # Panics
///
/// Panics — with the offending detail — when any invariant is violated;
/// the fleet engine turns that into a per-point failure naming the
/// scenario coordinates.
pub fn run_chaos(cfg: &ChaosConfig) -> ChaosSummary {
    let faults = (cfg.fault_rate * cfg.horizon as f64).round() as usize;
    let mut sys = build_system(cfg);
    sys.trace_mut().set_enabled(true);
    sys.set_fault_plan(FaultPlan::generate(
        cfg.seed.wrapping_mul(0x2545_F491_4F6C_DD1D) ^ 0xFA_017,
        cfg.horizon,
        faults,
    ));

    let mut engine = Engine::new(sys);
    engine.set_fast_forward(true);
    // Invariant 5 (monotonic energy): sample the meter mid-run.
    engine.run_for(Cycles(cfg.horizon / 2));
    let energy_mid = engine.machine().meter().total_energy().joules();
    engine.run_for(Cycles(cfg.horizon - cfg.horizon / 2));

    // Invariant 2 (fault-or-recover): a surviving system must drain
    // back to quiescence within the recovery budget.
    let halted = engine.machine().fault().is_some();
    if !halted {
        let deadline = engine.machine().now() + Cycles(cfg.recovery_budget);
        let (_, recovered) = engine.run_until(deadline, |s| s.is_quiescent());
        assert!(
            recovered || engine.machine().fault().is_some(),
            "system neither recovered nor faulted within {} cycles",
            cfg.recovery_budget
        );
    }
    let mut sys = engine.into_machine();

    // Invariant 1 (no silent wedge): a stopped machine names its fault.
    let halted = sys.fault().is_some();

    // Invariant 3 (loud loss): event conservation and disposition tally.
    // A run that halted early (recorded fault) stops injecting; a
    // surviving run must land every scheduled fault — fast-forward is
    // not allowed to skip one.
    let stats = sys.fault_stats();
    if halted {
        assert!(
            stats.injected as usize <= faults,
            "injected more faults than scheduled"
        );
    } else {
        assert_eq!(
            stats.injected as usize, faults,
            "scheduled faults must all inject (fast-forward skipped one?)"
        );
    }
    assert_eq!(
        stats.injected,
        stats.absorbed + stats.degraded + stats.fatal,
        "every injected fault needs a disposition"
    );
    let irqs = sys.slaves().irqs.clone();
    assert_eq!(
        irqs.raised(),
        irqs.taken() + irqs.cleared() + irqs.pending_count(),
        "interrupt events must be conserved (raised = taken + cleared + pending)"
    );

    // Invariant 4 (paired trace): exact pairing whenever nothing was
    // dropped by the ring buffer.
    if sys.trace().dropped() == 0 {
        let injected_ev = sys
            .trace()
            .events()
            .filter(|e| matches!(e.kind, TraceKind::FaultInjected { .. }))
            .count() as u64;
        let disposed_ev = sys
            .trace()
            .events()
            .filter(|e| matches!(e.kind, TraceKind::FaultAbsorbed { .. }))
            .count() as u64;
        assert_eq!(injected_ev, stats.injected, "every injection traced");
        assert_eq!(disposed_ev, stats.injected, "every injection disposed");
    }

    // Invariant 5 (monotonic energy).
    let energy_j = sys.meter().total_energy().joules();
    assert!(
        energy_j.is_finite() && energy_j >= energy_mid && energy_mid >= 0.0,
        "energy accounting ran backwards: mid {energy_mid} vs end {energy_j}"
    );

    let out = sys.take_outbox();
    let corrupt = out
        .iter()
        .filter(|(_, bytes)| ulp_net::Frame::decode(bytes).is_err())
        .count() as u64;
    ChaosSummary {
        injected: stats.injected,
        absorbed: stats.absorbed,
        degraded: stats.degraded,
        fatal: stats.fatal,
        raised: irqs.raised(),
        taken: irqs.taken(),
        overload_dropped: irqs.dropped(),
        fault_cleared: irqs.cleared(),
        sent: out.len() as u64,
        corrupt,
        halted: halted as u64,
        energy_j,
    }
}

/// Build the app × fault-rate × seed campaign grid.
pub fn campaign(
    apps: &[ChaosApp],
    rates: &[f64],
    seeds: u64,
    horizon: u64,
) -> Sweep<ChaosConfig> {
    let mut sweep = Sweep::new("chaos-campaign", METRICS);
    for &app in apps {
        for &rate in rates {
            for seed in 0..seeds {
                sweep.push(
                    Coords::new()
                        .with("app", app.name())
                        .with("rate", rate)
                        .with("seed", seed),
                    ChaosConfig {
                        app,
                        fault_rate: rate,
                        seed,
                        horizon,
                        ..ChaosConfig::default()
                    },
                );
            }
        }
    }
    sweep
}

/// Deterministic campaign summary: the full per-point CSV followed by
/// grid-wide aggregates. This is the artifact `tests/golden.rs` pins
/// byte-for-byte.
pub fn campaign_summary(results: &SweepResults) -> String {
    let col = |name: &str| {
        results
            .columns()
            .iter()
            .position(|c| c == name)
            .unwrap_or_else(|| panic!("missing column {name}"))
    };
    let sum = |name: &str| -> u64 {
        let i = col(name);
        results
            .rows()
            .iter()
            .map(|r| match &r[i] {
                Cell::U64(n) => *n,
                other => panic!("column {name} is not integral: {other:?}"),
            })
            .sum()
    };
    let mut out = String::new();
    out.push_str("# chaos campaign\n");
    out.push_str(&results.to_csv());
    out.push_str(&format!(
        "# aggregate points={} injected={} absorbed={} degraded={} fatal={} \
         sent={} corrupt={} overload_dropped={} fault_cleared={} halted={}\n",
        results.rows().len(),
        sum("injected"),
        sum("absorbed"),
        sum("degraded"),
        sum("fatal"),
        sum("sent"),
        sum("corrupt"),
        sum("overload_dropped"),
        sum("fault_cleared"),
        sum("halted"),
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_point_is_fault_free() {
        let s = run_chaos(&ChaosConfig {
            fault_rate: 0.0,
            horizon: 12_000,
            ..ChaosConfig::default()
        });
        assert_eq!(s.injected, 0);
        assert_eq!(s.fault_cleared, 0);
        assert_eq!(s.halted, 0);
        assert!(s.sent > 0, "baseline app must make progress");
        assert_eq!(s.corrupt, 0);
    }

    #[test]
    fn faulted_point_is_deterministic() {
        let cfg = ChaosConfig {
            app: ChaosApp::Sample,
            fault_rate: 2e-3,
            seed: 3,
            horizon: 20_000,
            ..ChaosConfig::default()
        };
        let a = run_chaos(&cfg);
        let b = run_chaos(&cfg);
        assert_eq!(a, b, "same config, same summary");
        if a.halted == 0 {
            assert_eq!(a.injected, 40, "rate × horizon faults scheduled");
        } else {
            assert!(a.injected <= 40, "halted runs stop injecting early");
        }
        assert!(a.injected > 0, "this seed must actually inject");
    }

    #[test]
    fn campaign_grid_covers_apps_rates_seeds() {
        let sweep = campaign(
            &[ChaosApp::Sample, ChaosApp::Filtered],
            &[0.0, 1e-3],
            3,
            10_000,
        );
        assert_eq!(sweep.len(), 12);
        let (coords, cfg) = sweep.points().next().unwrap();
        assert_eq!(coords.get("app"), Some("app1"));
        assert_eq!(coords.get("rate"), Some("0"));
        assert_eq!(cfg.horizon, 10_000);
    }

    #[test]
    fn summary_text_has_csv_and_aggregates() {
        let sweep = campaign(&[ChaosApp::Sample], &[1e-3], 2, 8_000);
        let results = sweep.run(2, |_, cfg| cells(&run_chaos(cfg))).unwrap();
        let text = campaign_summary(&results);
        assert!(text.starts_with("# chaos campaign\napp,rate,seed,"));
        assert!(text.contains("# aggregate points=2 injected=16 "), "{text}");
    }
}
