//! Host perf report plumbing and streaming campaign progress.
//!
//! `ulp_sim::perf` owns the measurement substrate (spans, counters,
//! snapshots); this module turns snapshots into operator-facing
//! artifacts: the `trace --perf` report, guest-derived counter
//! attachment, and the `--progress` NDJSON heartbeats the `fleet` and
//! `chaos` binaries stream on **stderr** while a campaign drains.
//! Heartbeats never touch stdout, so CSV/JSON exports and every golden
//! stay byte-identical with and without `--progress`.

use std::io::Write;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::fleet::{Coords, SweepObserver};
use ulp_core::System;
use ulp_sim::perf::{PerfSnapshot, Profiler};
use ulp_sim::{Simulatable, TraceBuffer};

/// Attach guest-derived totals to a profiler: simulated cycles, busy
/// cycles, EP events serviced, and the trace ring buffer's counters.
/// All deterministic — they extend the golden-pinned side of
/// [`PerfSnapshot::counts_table`].
pub fn attach_guest_counters(profiler: &Profiler, sys: &System) {
    profiler.counter_add("guest.cycles", sys.now().0);
    profiler.counter_add("guest.busy_cycles", sys.busy_cycles().0);
    profiler.counter_add("guest.ep_events", sys.ep().stats().events);
    attach_trace_counters(profiler, sys.trace());
}

/// The trace-buffer subset of [`attach_guest_counters`], usable with
/// any machine that exposes a [`TraceBuffer`] (e.g. the Mica2 board):
/// retained events, peak ring occupancy, and drops.
pub fn attach_trace_counters(profiler: &Profiler, trace: &TraceBuffer) {
    profiler.counter_add("trace.events", trace.len() as u64);
    profiler.counter_add("trace.peak_occupancy", trace.peak() as u64);
    profiler.counter_add("trace.dropped", trace.dropped());
}

/// The operator-facing perf report: the deterministic counts table
/// (golden-pinned), then the wall-clock self-time table and throughput
/// rates, both clearly labelled non-deterministic. Rates that would be
/// non-finite are omitted, not printed.
pub fn render_report(snap: &PerfSnapshot) -> String {
    let mut out = snap.counts_table();
    out.push('\n');
    out.push_str(&snap.self_time_table());
    let mut rates = String::new();
    for (name, _) in &snap.counters {
        if let Some(rate) = snap.rate(name) {
            rates.push_str(&format!("{name}: {rate:.1}/s\n"));
        }
    }
    if !rates.is_empty() {
        out.push_str("\nthroughput (wall-clock derived, NON-deterministic)\n");
        out.push_str(&rates);
    }
    out
}

/// One `--progress` heartbeat as a single-line JSON object. Throughput
/// and ETA route through [`PerfSnapshot::rate`] — the same code path as
/// every other points/sec figure — and are **omitted** (never rendered
/// as NaN/Infinity) when the elapsed clock cannot support them, so the
/// line always passes `ulp_sim::telemetry::validate_json`.
pub fn heartbeat_json(
    sweep: &str,
    done: usize,
    total: usize,
    elapsed: Duration,
    coords: Option<&Coords>,
) -> String {
    fn esc(s: &str) -> String {
        let mut out = String::with_capacity(s.len());
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out
    }
    let snap = PerfSnapshot::from_host(elapsed, vec![("fleet.points".to_string(), done as u64)]);
    let mut out = format!(
        "{{\"sweep\":\"{}\",\"done\":{done},\"total\":{total},\"elapsed_ms\":{:.3}",
        esc(sweep),
        elapsed.as_secs_f64() * 1e3
    );
    if let Some(pps) = snap.rate("fleet.points") {
        out.push_str(&format!(",\"points_per_sec\":{pps:.3}"));
        if pps > 0.0 {
            let eta = total.saturating_sub(done) as f64 / pps;
            if eta.is_finite() {
                out.push_str(&format!(",\"eta_s\":{eta:.3}"));
            }
        }
    }
    if let Some(c) = coords {
        out.push_str(&format!(",\"coords\":\"{}\"", esc(&c.to_string())));
    }
    out.push('}');
    out
}

/// A throttled NDJSON progress stream implementing [`SweepObserver`]:
/// hand it to [`Sweep::run_observed`](crate::fleet::Sweep::run_observed)
/// (or `measure_speedup_observed`) and it emits one heartbeat line per
/// `ULP_PROGRESS_MS` interval (default 200 ms) plus a final line when
/// the last point lands. Observing is all it does — results, CSV/JSON
/// bytes, and exit codes are untouched.
pub struct ProgressMeter {
    sweep: String,
    total: usize,
    interval: Duration,
    state: Mutex<MeterState>,
}

struct MeterState {
    started: Instant,
    done: usize,
    last_emit: Option<Instant>,
    sink: Box<dyn Write + Send>,
}

impl ProgressMeter {
    /// A meter streaming to stderr — what `--progress` wires up.
    /// `total` is the number of `point_done` callbacks expected (for
    /// `--check` runs that is `2 × grid`, serial then parallel).
    pub fn stderr(sweep: &str, total: usize) -> ProgressMeter {
        ProgressMeter::with_sink(sweep, total, Box::new(std::io::stderr()))
    }

    /// A meter streaming to an arbitrary sink (tests capture a buffer).
    pub fn with_sink(sweep: &str, total: usize, sink: Box<dyn Write + Send>) -> ProgressMeter {
        let interval_ms = std::env::var("ULP_PROGRESS_MS")
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok())
            .unwrap_or(200);
        ProgressMeter {
            sweep: sweep.to_string(),
            total,
            interval: Duration::from_millis(interval_ms),
            state: Mutex::new(MeterState {
                started: Instant::now(),
                done: 0,
                last_emit: None,
                sink,
            }),
        }
    }
}

impl SweepObserver for ProgressMeter {
    fn point_done(&self, _index: usize, coords: &Coords) {
        let mut state = self.state.lock().unwrap();
        state.done += 1;
        let now = Instant::now();
        let due = match state.last_emit {
            None => true,
            Some(at) => now.duration_since(at) >= self.interval,
        };
        let finished = state.done >= self.total;
        if !due && !finished {
            return;
        }
        state.last_emit = Some(now);
        let line = heartbeat_json(
            &self.sweep,
            state.done,
            self.total,
            now.duration_since(state.started),
            Some(coords),
        );
        // A broken stderr pipe must not take the campaign down.
        let _ = writeln!(state.sink, "{line}");
        let _ = state.sink.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::{Cell, Sweep};
    use std::sync::{Arc, Mutex as StdMutex};
    use ulp_sim::telemetry::validate_json;

    #[derive(Clone)]
    struct SharedBuf(Arc<StdMutex<Vec<u8>>>);
    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn heartbeats_validate_and_omit_non_finite_fields() {
        // A real elapsed time yields throughput and ETA.
        let line = heartbeat_json(
            "demo",
            3,
            16,
            Duration::from_millis(50),
            Some(&Coords::new().with("nodes", 4).with("seed", 1)),
        );
        validate_json(&line).expect("heartbeat is valid JSON");
        assert!(line.contains("\"points_per_sec\":"));
        assert!(line.contains("\"eta_s\":"));
        assert!(line.contains("\"coords\":\"nodes=4 seed=1\""));
        // Zero elapsed: both rate fields are *omitted*, never Inf/NaN.
        let line = heartbeat_json("demo", 0, 16, Duration::ZERO, None);
        validate_json(&line).expect("zero-clock heartbeat is valid JSON");
        assert!(!line.contains("points_per_sec"), "{line}");
        assert!(!line.contains("eta_s"), "{line}");
        assert!(!line.contains("NaN") && !line.contains("inf"), "{line}");
    }

    #[test]
    fn meter_streams_ndjson_without_touching_results() {
        let mut sweep = Sweep::new("meter", &["v"]);
        for i in 0..12u64 {
            sweep.push(Coords::new().with("i", i), i);
        }
        let eval = |_: &Coords, &i: &u64| vec![Cell::U64(i + 1)];
        let plain = sweep.run(2, eval).unwrap();

        let buf = SharedBuf(Arc::new(StdMutex::new(Vec::new())));
        let meter = ProgressMeter::with_sink("meter", sweep.len(), Box::new(buf.clone()));
        let observed = sweep.run_observed(2, eval, &meter).unwrap();

        assert_eq!(plain.to_csv(), observed.to_csv(), "observer effect on CSV");
        assert_eq!(plain.to_json(), observed.to_json(), "observer effect on JSON");

        let bytes = buf.0.lock().unwrap().clone();
        let text = String::from_utf8(bytes).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert!(!lines.is_empty(), "at least one heartbeat");
        for line in &lines {
            validate_json(line).unwrap_or_else(|e| panic!("bad heartbeat {line}: {e}"));
            assert!(!line.contains("NaN") && !line.contains("inf"), "{line}");
        }
        // The final heartbeat always fires and reports completion.
        let last = lines.last().unwrap();
        assert!(last.contains("\"done\":12,\"total\":12"), "{last}");
    }

    #[test]
    fn render_report_separates_deterministic_and_wall_clock() {
        let profiler = ulp_sim::Profiler::new();
        {
            let _g = profiler.span("demo.phase");
        }
        profiler.counter_add("demo.count", 7);
        let snap = profiler.snapshot();
        let report = render_report(&snap);
        assert!(report.contains("host perf counts (deterministic)"));
        assert!(report.contains("NON-deterministic"));
        // The deterministic table precedes every wall-clock section.
        let counts_at = report.find("host perf counts").unwrap();
        let spans_at = report.find("host perf spans").unwrap();
        assert!(counts_at < spans_at);
    }
}
