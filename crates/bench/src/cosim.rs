//! Scalable multi-node lossy co-simulation: the seed-replication
//! workload behind the `fleet` binary.
//!
//! The 4-node flood of `examples/multihop.rs` / `tests/determinism.rs`
//! generalized to 64–256 cycle-accurate nodes on one shared broadcast
//! [`Medium`]: one *head* node samples fast and floods its packets;
//! every other node runs the same stage-3 forwarding application
//! (CAM-deduplicated rebroadcast) and relays towards a listening base
//! station. Each [`CosimConfig`] — node count × loss rate × seed ×
//! horizon — is one grid point of a [`crate::fleet::Sweep`]; the run is
//! a pure function of the config (asserted by `tests/fleet.rs`), so
//! replicating it across many seeds in parallel yields
//! confidence-interval-grade statistics for the dense-network energy
//! studies the ROADMAP points at.
//!
//! The per-point [`CosimSummary`] condenses the whole run — channel
//! counters, base-station goodput, per-node energy, µC wakeups, and the
//! merged telemetry layer's EP service-latency tail — into one row of
//! scalar cells, so a 256-node × 32-seed sweep serializes to a small
//! CSV instead of gigabytes of traces.

use ulp_apps::ulp::{monitoring, AppStage, MonitoringConfig, SamplePeriod};
use ulp_core::slaves::RandomWalkSensor;
use ulp_core::{System, SystemConfig};
use ulp_net::{EventWheel, Medium, MediumConfig};
use ulp_sim::{Cycles, Metrics, Simulatable, StepOutcome};

/// Simulated microseconds per node cycle (100 kHz system clock): the
/// conversion between node cycles and medium microseconds, shared with
/// the dense spatial driver ([`crate::dense`]).
pub const SLOT_US: u64 = 10;

/// One co-simulation grid point: everything that varies across the
/// sweep, plus the shared horizon.
#[derive(Debug, Clone, PartialEq)]
pub struct CosimConfig {
    /// Number of cycle-accurate nodes on the medium (one head + the
    /// rest forwarding relays), excluding the listening base station.
    pub nodes: usize,
    /// Independent per-receiver frame-loss probability.
    pub loss: f64,
    /// Seed for the channel *and* (xor node index) each node's sensor.
    pub seed: u64,
    /// Simulation horizon in 10 µs slots (= node cycles at 100 kHz).
    pub horizon_slots: u64,
    /// Sample period of the head node, cycles.
    pub head_period: u16,
    /// Sample period of the relay nodes, cycles (longer than the
    /// horizon by default: relays only forward).
    pub relay_period: u16,
}

impl Default for CosimConfig {
    fn default() -> CosimConfig {
        CosimConfig {
            nodes: 64,
            loss: 0.1,
            seed: 7,
            horizon_slots: 12_000,
            head_period: 3_000,
            relay_period: 40_000,
        }
    }
}

impl CosimConfig {
    /// Canonical description of everything that determines this point's
    /// result, for the campaign store's content address
    /// (`ulp_bench::store::canonical_key`). Covers *all* fields — the
    /// sweep coordinates only expose nodes/loss/seed, but the horizon
    /// and periods change the result just as surely.
    pub fn store_key(&self) -> String {
        format!(
            "cosim:nodes={};loss={};seed={};slots={};head={};relay={}",
            self.nodes, self.loss, self.seed, self.horizon_slots, self.head_period,
            self.relay_period
        )
    }
}

/// Scalar summary of one co-simulation run: one CSV row per grid point.
#[derive(Debug, Clone, PartialEq)]
pub struct CosimSummary {
    /// Frames transmitted on the medium.
    pub sent: u64,
    /// Frame deliveries (one per receiving endpoint).
    pub delivered: u64,
    /// Frame losses (one per receiving endpoint that missed one).
    pub lost: u64,
    /// Frames the base station heard (flood goodput, with duplicates).
    pub heard: u64,
    /// Radio transmissions summed over all nodes.
    pub radio_tx: u64,
    /// Microcontroller wakeups summed over all nodes (should stay 0:
    /// forwarding is a regular event handled entirely by the EP).
    pub mcu_wakeups: u64,
    /// Total energy over all nodes, joules.
    pub energy_j: f64,
    /// Fleet-wide EP IRQ service-latency p99, cycles (from the merged
    /// telemetry registry; 0 if no IRQ was ever queued).
    pub service_p99: u64,
    /// Fleet-wide count of serviced EP IRQs.
    pub irqs_serviced: u64,
}

/// Run one co-simulation grid point to completion. Deterministic: the
/// summary is a pure function of `cfg` (double-run asserted in
/// `tests/fleet.rs`, thread-count invariance by the fleet engine's
/// `--check` mode).
///
/// # Panics
///
/// Panics if `cfg.nodes == 0`, if a node faults, or if a node halts —
/// a failed scenario is precisely what the fleet engine's
/// panic-with-coordinates reporting exists to surface.
pub fn run_cosim(cfg: &CosimConfig) -> CosimSummary {
    let (mut medium, mut nodes, base) = build_population(cfg);
    let mut heard = 0u64;
    for cycle in 1..=cfg.horizon_slots {
        let now_us = cycle * SLOT_US;
        for (endpoint, node) in nodes.iter_mut() {
            for d in medium.poll(*endpoint, now_us) {
                node.schedule_rx(Cycles(cycle + 1), d.bytes);
            }
            if node.now() < Cycles(cycle) {
                let outcome = node.step();
                assert!(
                    !matches!(outcome, StepOutcome::Halted),
                    "node at endpoint {endpoint} halted"
                );
            }
            for (at, bytes) in node.take_outbox() {
                medium.transmit(*endpoint, at.0 * SLOT_US, &bytes);
            }
        }
        heard += medium.poll(base, now_us).len() as u64;
    }
    summarize(&medium, &nodes, heard)
}

/// Run one co-simulation grid point on the event-wheel scheduler: only
/// nodes with pending events (timer wakeup, frame arrival, or an ongoing
/// busy span) are touched, instead of polling every node every slot.
///
/// Produces the **same summary** as [`run_cosim`] — every integer
/// counter is bit-identical because medium RNG draws happen in the same
/// `(slot, node index)` order, and the energy total matches to the
/// fast-forward tolerance (idle spans are charged in one lump via
/// `skip_to` instead of per-cycle, which reorders the floating-point
/// sum). `tests/net_scale.rs` asserts both claims over random configs.
///
/// The win is asymptotic, not constant-factor: slot-stepping is
/// O(nodes × slots) regardless of activity, while this driver is
/// O(events). A 1k-node population at a realistic duty cycle is mostly
/// asleep, so the wheel does ~1% of the work.
///
/// # Panics
///
/// Same contract as [`run_cosim`]: panics on an empty population, a
/// faulted node, or a halted node.
pub fn run_cosim_event(cfg: &CosimConfig) -> CosimSummary {
    let (mut medium, mut nodes, base) = build_population(cfg);
    let horizon = cfg.horizon_slots;
    // Earliest scheduled activation cycle per node; `wheel` may hold
    // stale (later) entries for a node, dropped on pop by comparing
    // against this. One live activation per node at any time.
    let mut pending: Vec<Option<u64>> = vec![None; nodes.len()];
    let mut wheel: EventWheel<usize> = EventWheel::new();
    let schedule_act = |wheel: &mut EventWheel<usize>,
                            pending: &mut Vec<Option<u64>>,
                            i: usize,
                            c: u64| {
        if c <= horizon && pending[i].is_none_or(|c0| c < c0) {
            pending[i] = Some(c);
            wheel.schedule(c, i);
        }
    };
    for i in 0..nodes.len() {
        schedule_act(&mut wheel, &mut pending, i, 1); // boot
    }
    while let Some(c) = wheel.peek_time() {
        // Drain the whole tick and process it in node-index order: that
        // is the order the slot-stepped loop makes its medium calls in,
        // and the medium's loss draws are sequenced by transmit order.
        let mut batch: Vec<usize> = Vec::new();
        while wheel.peek_time() == Some(c) {
            let (_, i) = wheel.pop().expect("peeked entry must pop");
            if pending[i] == Some(c) {
                batch.push(i);
            }
        }
        batch.sort_unstable();
        batch.dedup();
        for i in batch {
            pending[i] = None;
            let (endpoint, node) = &mut nodes[i];
            // Poll first, exactly like the slot-stepped loop does: an
            // arrival due by this slot becomes an rx at the next cycle.
            for d in medium.poll(*endpoint, c * SLOT_US) {
                node.schedule_rx(Cycles(c + 1), d.bytes);
            }
            let outcome = advance_node(node, Cycles(c), *endpoint);
            let outbox = node.take_outbox();
            let transmitted = !outbox.is_empty();
            for (at, bytes) in outbox {
                medium.transmit(*endpoint, at.0 * SLOT_US, &bytes);
            }
            // A transmit may have queued arrivals for anyone: wake each
            // endpoint with a pending arrival at the slot whose poll
            // will see it (ceil to the next slot boundary).
            if transmitted {
                for (j, (ep, _)) in nodes.iter().enumerate() {
                    if let Some(a_us) = medium.next_arrival(*ep) {
                        let poll_at = a_us.div_ceil(SLOT_US).max(c + 1);
                        schedule_act(&mut wheel, &mut pending, j, poll_at);
                    }
                }
            } else if let Some(a_us) = medium.next_arrival(nodes[i].0) {
                // Re-arm for arrivals still queued behind the ones this
                // poll drained.
                let poll_at = a_us.div_ceil(SLOT_US).max(c + 1);
                schedule_act(&mut wheel, &mut pending, i, poll_at);
            }
            // Re-arm this node: busy spans step every cycle; an idle
            // node sleeps until its next wakeup's firing cycle.
            let next = match outcome {
                StepOutcome::Busy => Some(c + 1),
                _ => nodes[i].1.next_wakeup().map(|w| w.0.max(c) + 1),
            };
            if let Some(n) = next {
                schedule_act(&mut wheel, &mut pending, i, n);
            }
        }
    }
    // Every node still owes its idle tail up to the horizon (energy
    // accrues while asleep); events past the horizon stay unprocessed,
    // exactly as in the slot-stepped loop.
    for (endpoint, node) in nodes.iter_mut() {
        advance_node(node, Cycles(horizon), *endpoint);
    }
    let heard = medium.poll(base, horizon * SLOT_US).len() as u64;
    summarize(&medium, &nodes, heard)
}

/// Advance one node to `target` using the engine's idle-skip policy:
/// step busy cycles one at a time, lump idle spans with `skip_to`
/// clamped to the next wakeup. Returns the outcome of the last step
/// (`Idle` if the node was already at `target`).
fn advance_node(node: &mut System, target: Cycles, endpoint: usize) -> StepOutcome {
    let mut outcome = StepOutcome::Idle;
    while node.now() < target {
        outcome = node.step();
        match outcome {
            StepOutcome::Busy => {}
            StepOutcome::Halted => panic!("node at endpoint {endpoint} halted"),
            StepOutcome::Idle => {
                let now = node.now();
                let skip = match node.next_wakeup() {
                    Some(w) if w > now => w.min(target),
                    Some(_) => continue, // wakeup due now: keep stepping
                    None => target,
                };
                if skip > now {
                    node.skip_to(skip);
                }
            }
        }
    }
    outcome
}

/// Build the shared medium plus the head-and-relays population used by
/// both co-sim drivers; returns `(medium, [(endpoint, node)], base)`.
fn build_population(cfg: &CosimConfig) -> (Medium, Vec<(usize, System)>, usize) {
    assert!(cfg.nodes >= 1, "co-sim needs at least the head node");
    let mut medium = Medium::new(MediumConfig {
        loss_probability: cfg.loss,
        propagation_delay_us: 30,
        seed: cfg.seed,
    });
    let nodes: Vec<(usize, System)> = (0..cfg.nodes as u16)
        .map(|i| {
            let program = monitoring(&MonitoringConfig {
                stage: AppStage::Forwarding,
                period: SamplePeriod::Cycles(if i == 0 {
                    cfg.head_period
                } else {
                    cfg.relay_period
                }),
                samples_per_packet: 1,
                threshold: 0,
            });
            let config = SystemConfig {
                address: 2 + i,
                dest: 0x0000,
                ..SystemConfig::default()
            };
            let mut sys = program.build_system(
                config,
                Box::new(RandomWalkSensor::new(90, cfg.seed ^ i as u64)),
            );
            sys.set_telemetry(true);
            (medium.register(), sys)
        })
        .collect();
    let base = medium.register();
    (medium, nodes, base)
}

fn summarize(medium: &Medium, nodes: &[(usize, System)], heard: u64) -> CosimSummary {
    let mut fleet = Metrics::new();
    let mut radio_tx = 0u64;
    let mut mcu_wakeups = 0u64;
    let mut energy_j = 0.0f64;
    for (endpoint, node) in nodes {
        assert!(
            node.fault().is_none(),
            "node at endpoint {endpoint} faulted: {:?}",
            node.fault()
        );
        radio_tx += node.slaves().radio.stats().transmitted;
        mcu_wakeups += node.mcu().stats().wakeups;
        energy_j += node.meter().total_energy().joules();
        fleet.merge(&node.telemetry_snapshot());
    }
    let (service_p99, irqs_serviced) = fleet
        .histogram("irq.service_latency")
        .map(|h| (h.percentile(0.99).unwrap_or(0), h.count()))
        .unwrap_or((0, 0));
    let stats = medium.stats();
    CosimSummary {
        sent: stats.sent,
        delivered: stats.delivered,
        lost: stats.lost,
        heard,
        radio_tx,
        mcu_wakeups,
        energy_j,
        service_p99,
        irqs_serviced,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small instance (fast enough for the tier-1 path) must flood
    /// frames through relays to the base station, lose some on a 10%
    /// channel, and never wake a microcontroller.
    #[test]
    fn small_cosim_floods_and_stays_on_the_ep() {
        let cfg = CosimConfig {
            nodes: 8,
            horizon_slots: 9_000,
            ..CosimConfig::default()
        };
        let s = run_cosim(&cfg);
        assert!(s.sent > 0, "head node must transmit: {s:?}");
        assert!(s.heard > 0, "flood must reach the base station: {s:?}");
        assert!(s.lost > 0, "10% loss over this horizon must drop frames");
        assert!(
            s.radio_tx > s.heard.min(2),
            "relays must rebroadcast: {s:?}"
        );
        assert_eq!(
            s.mcu_wakeups, 0,
            "forwarding is a regular event; no µC should ever wake"
        );
        assert!(s.energy_j > 0.0);
        assert!(s.irqs_serviced > 0);
    }

    #[test]
    fn cosim_is_a_pure_function_of_its_config() {
        let cfg = CosimConfig {
            nodes: 6,
            horizon_slots: 7_000,
            ..CosimConfig::default()
        };
        assert_eq!(run_cosim(&cfg), run_cosim(&cfg));
    }

    /// The event-wheel driver is a drop-in replacement: every integer
    /// counter bit-identical to the slot-stepped loop, energy within
    /// the fast-forward tolerance. The property-level version (random
    /// configs) lives in `tests/net_scale.rs`.
    #[test]
    fn event_driver_matches_slot_stepped_driver() {
        let cfg = CosimConfig {
            nodes: 8,
            horizon_slots: 9_000,
            ..CosimConfig::default()
        };
        let slot = run_cosim(&cfg);
        let event = run_cosim_event(&cfg);
        assert_eq!(
            (slot.sent, slot.delivered, slot.lost, slot.heard),
            (event.sent, event.delivered, event.lost, event.heard),
            "channel counters diverged:\nslot  {slot:?}\nevent {event:?}"
        );
        assert_eq!(
            (slot.radio_tx, slot.mcu_wakeups, slot.service_p99, slot.irqs_serviced),
            (event.radio_tx, event.mcu_wakeups, event.service_p99, event.irqs_serviced),
            "node counters diverged:\nslot  {slot:?}\nevent {event:?}"
        );
        let tol = slot.energy_j.abs() * 1e-12;
        assert!(
            (slot.energy_j - event.energy_j).abs() <= tol,
            "energy diverged beyond fast-forward tolerance: {} vs {}",
            slot.energy_j,
            event.energy_j
        );
    }

    #[test]
    fn seed_steers_the_channel() {
        let cfg = CosimConfig {
            nodes: 6,
            horizon_slots: 7_000,
            ..CosimConfig::default()
        };
        let a = run_cosim(&cfg);
        let b = run_cosim(&CosimConfig { seed: 8, ..cfg });
        assert_ne!(a, b, "different seeds must draw different losses");
    }
}
