//! Scalable multi-node lossy co-simulation: the seed-replication
//! workload behind the `fleet` binary.
//!
//! The 4-node flood of `examples/multihop.rs` / `tests/determinism.rs`
//! generalized to 64–256 cycle-accurate nodes on one shared broadcast
//! [`Medium`]: one *head* node samples fast and floods its packets;
//! every other node runs the same stage-3 forwarding application
//! (CAM-deduplicated rebroadcast) and relays towards a listening base
//! station. Each [`CosimConfig`] — node count × loss rate × seed ×
//! horizon — is one grid point of a [`crate::fleet::Sweep`]; the run is
//! a pure function of the config (asserted by `tests/fleet.rs`), so
//! replicating it across many seeds in parallel yields
//! confidence-interval-grade statistics for the dense-network energy
//! studies the ROADMAP points at.
//!
//! The per-point [`CosimSummary`] condenses the whole run — channel
//! counters, base-station goodput, per-node energy, µC wakeups, and the
//! merged telemetry layer's EP service-latency tail — into one row of
//! scalar cells, so a 256-node × 32-seed sweep serializes to a small
//! CSV instead of gigabytes of traces.

use ulp_apps::ulp::{monitoring, AppStage, MonitoringConfig, SamplePeriod};
use ulp_core::slaves::RandomWalkSensor;
use ulp_core::{System, SystemConfig};
use ulp_net::{Medium, MediumConfig};
use ulp_sim::{Cycles, Metrics, Simulatable, StepOutcome};

/// One co-simulation grid point: everything that varies across the
/// sweep, plus the shared horizon.
#[derive(Debug, Clone, PartialEq)]
pub struct CosimConfig {
    /// Number of cycle-accurate nodes on the medium (one head + the
    /// rest forwarding relays), excluding the listening base station.
    pub nodes: usize,
    /// Independent per-receiver frame-loss probability.
    pub loss: f64,
    /// Seed for the channel *and* (xor node index) each node's sensor.
    pub seed: u64,
    /// Simulation horizon in 10 µs slots (= node cycles at 100 kHz).
    pub horizon_slots: u64,
    /// Sample period of the head node, cycles.
    pub head_period: u16,
    /// Sample period of the relay nodes, cycles (longer than the
    /// horizon by default: relays only forward).
    pub relay_period: u16,
}

impl Default for CosimConfig {
    fn default() -> CosimConfig {
        CosimConfig {
            nodes: 64,
            loss: 0.1,
            seed: 7,
            horizon_slots: 12_000,
            head_period: 3_000,
            relay_period: 40_000,
        }
    }
}

/// Scalar summary of one co-simulation run: one CSV row per grid point.
#[derive(Debug, Clone, PartialEq)]
pub struct CosimSummary {
    /// Frames transmitted on the medium.
    pub sent: u64,
    /// Frame deliveries (one per receiving endpoint).
    pub delivered: u64,
    /// Frame losses (one per receiving endpoint that missed one).
    pub lost: u64,
    /// Frames the base station heard (flood goodput, with duplicates).
    pub heard: u64,
    /// Radio transmissions summed over all nodes.
    pub radio_tx: u64,
    /// Microcontroller wakeups summed over all nodes (should stay 0:
    /// forwarding is a regular event handled entirely by the EP).
    pub mcu_wakeups: u64,
    /// Total energy over all nodes, joules.
    pub energy_j: f64,
    /// Fleet-wide EP IRQ service-latency p99, cycles (from the merged
    /// telemetry registry; 0 if no IRQ was ever queued).
    pub service_p99: u64,
    /// Fleet-wide count of serviced EP IRQs.
    pub irqs_serviced: u64,
}

/// Run one co-simulation grid point to completion. Deterministic: the
/// summary is a pure function of `cfg` (double-run asserted in
/// `tests/fleet.rs`, thread-count invariance by the fleet engine's
/// `--check` mode).
///
/// # Panics
///
/// Panics if `cfg.nodes == 0`, if a node faults, or if a node halts —
/// a failed scenario is precisely what the fleet engine's
/// panic-with-coordinates reporting exists to surface.
pub fn run_cosim(cfg: &CosimConfig) -> CosimSummary {
    assert!(cfg.nodes >= 1, "co-sim needs at least the head node");
    const SLOT_US: u64 = 10;
    let mut medium = Medium::new(MediumConfig {
        loss_probability: cfg.loss,
        propagation_delay_us: 30,
        seed: cfg.seed,
    });
    let mut nodes: Vec<(usize, System)> = (0..cfg.nodes as u16)
        .map(|i| {
            let program = monitoring(&MonitoringConfig {
                stage: AppStage::Forwarding,
                period: SamplePeriod::Cycles(if i == 0 {
                    cfg.head_period
                } else {
                    cfg.relay_period
                }),
                samples_per_packet: 1,
                threshold: 0,
            });
            let config = SystemConfig {
                address: 2 + i,
                dest: 0x0000,
                ..SystemConfig::default()
            };
            let mut sys = program.build_system(
                config,
                Box::new(RandomWalkSensor::new(90, cfg.seed ^ i as u64)),
            );
            sys.set_telemetry(true);
            (medium.register(), sys)
        })
        .collect();
    let base = medium.register();
    let mut heard = 0u64;
    for cycle in 1..=cfg.horizon_slots {
        let now_us = cycle * SLOT_US;
        for (endpoint, node) in nodes.iter_mut() {
            for d in medium.poll(*endpoint, now_us) {
                node.schedule_rx(Cycles(cycle + 1), d.bytes);
            }
            if node.now() < Cycles(cycle) {
                let outcome = node.step();
                assert!(
                    !matches!(outcome, StepOutcome::Halted),
                    "node at endpoint {endpoint} halted"
                );
            }
            for (at, bytes) in node.take_outbox() {
                medium.transmit(*endpoint, at.0 * SLOT_US, &bytes);
            }
        }
        heard += medium.poll(base, now_us).len() as u64;
    }

    let mut fleet = Metrics::new();
    let mut radio_tx = 0u64;
    let mut mcu_wakeups = 0u64;
    let mut energy_j = 0.0f64;
    for (endpoint, node) in &nodes {
        assert!(
            node.fault().is_none(),
            "node at endpoint {endpoint} faulted: {:?}",
            node.fault()
        );
        radio_tx += node.slaves().radio.stats().transmitted;
        mcu_wakeups += node.mcu().stats().wakeups;
        energy_j += node.meter().total_energy().joules();
        fleet.merge(&node.telemetry_snapshot());
    }
    let (service_p99, irqs_serviced) = fleet
        .histogram("irq.service_latency")
        .map(|h| (h.percentile(0.99).unwrap_or(0), h.count()))
        .unwrap_or((0, 0));
    let stats = medium.stats();
    CosimSummary {
        sent: stats.sent,
        delivered: stats.delivered,
        lost: stats.lost,
        heard,
        radio_tx,
        mcu_wakeups,
        energy_j,
        service_p99,
        irqs_serviced,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small instance (fast enough for the tier-1 path) must flood
    /// frames through relays to the base station, lose some on a 10%
    /// channel, and never wake a microcontroller.
    #[test]
    fn small_cosim_floods_and_stays_on_the_ep() {
        let cfg = CosimConfig {
            nodes: 8,
            horizon_slots: 9_000,
            ..CosimConfig::default()
        };
        let s = run_cosim(&cfg);
        assert!(s.sent > 0, "head node must transmit: {s:?}");
        assert!(s.heard > 0, "flood must reach the base station: {s:?}");
        assert!(s.lost > 0, "10% loss over this horizon must drop frames");
        assert!(
            s.radio_tx > s.heard.min(2),
            "relays must rebroadcast: {s:?}"
        );
        assert_eq!(
            s.mcu_wakeups, 0,
            "forwarding is a regular event; no µC should ever wake"
        );
        assert!(s.energy_j > 0.0);
        assert!(s.irqs_serviced > 0);
    }

    #[test]
    fn cosim_is_a_pure_function_of_its_config() {
        let cfg = CosimConfig {
            nodes: 6,
            horizon_slots: 7_000,
            ..CosimConfig::default()
        };
        assert_eq!(run_cosim(&cfg), run_cosim(&cfg));
    }

    #[test]
    fn seed_steers_the_channel() {
        let cfg = CosimConfig {
            nodes: 6,
            horizon_slots: 7_000,
            ..CosimConfig::default()
        };
        let a = run_cosim(&cfg);
        let b = run_cosim(&CosimConfig { seed: 8, ..cfg });
        assert_ne!(a, b, "different seeds must draw different losses");
    }
}
