//! The Table 4 / §6.1.3 measurement procedures, shared by the binaries
//! and the integration tests.
//!
//! Mica2 cycle counts come from PC-watchpoint probes on the board model
//! (the Atemu methodology); event-driven-system counts come from the
//! busy-cycle accounting of the system simulator, split between the
//! event-processor/slave portion and the microcontroller portion for the
//! irregular-event rows.

use ulp_apps::mica as mapps;
use ulp_apps::ulp::{self, stages, SamplePeriod};
use ulp_core::slaves::ConstSensor;
use ulp_core::{System, SystemConfig};
use ulp_net::Frame;
use ulp_sim::{Cycles, Engine};

/// Which platform a measurement ran on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SystemSide {
    /// The Mica2/TinyOS-style baseline.
    Mica2,
    /// The paper's event-driven architecture.
    Ulp,
}

/// One Table 4 row: the same code segment on both platforms.
#[derive(Debug, Clone)]
pub struct Table4Row {
    /// Row label.
    pub name: &'static str,
    /// Mica2 cycles (measured by probe).
    pub mica: u64,
    /// Event-driven system cycles (busy-cycle accounting).
    pub ulp: u64,
    /// The paper's reported Mica2 cycles.
    pub paper_mica: u64,
    /// The paper's reported cycles for their system.
    pub paper_ulp: u64,
}

impl Table4Row {
    /// Measured speedup (Mica2 / ours).
    pub fn speedup(&self) -> f64 {
        self.mica as f64 / self.ulp as f64
    }

    /// The paper's reported speedup.
    pub fn paper_speedup(&self) -> f64 {
        self.paper_mica as f64 / self.paper_ulp as f64
    }
}

fn ulp_system(prog: &ulp::UlpProgram) -> System {
    prog.build_system(SystemConfig::default(), Box::new(ConstSensor(128)))
}

/// Busy cycles for one send event on the event-driven system.
fn ulp_send_cycles(prog: &ulp::UlpProgram) -> u64 {
    let sys = ulp_system(prog);
    let mut engine = Engine::new(sys);
    let (_, ok) = engine.run_until(Cycles(120_000), |s| {
        s.slaves().radio.stats().transmitted >= 1 && s.is_quiescent()
    });
    assert!(ok, "send never completed");
    let sys = engine.machine();
    assert!(sys.fault().is_none(), "fault: {:?}", sys.fault());
    sys.busy_cycles().0
}

/// Busy cycles to receive-and-forward one message.
fn ulp_forward_cycles() -> u64 {
    let prog = stages::app3(SamplePeriod::Cycles(60_000), 0);
    let sys = ulp_system(&prog);
    let mut engine = Engine::new(sys);
    let frame = Frame::data(0x22, 0x0009, 0x0000, 3, &[1]).unwrap();
    engine
        .machine_mut()
        .schedule_rx(Cycles(500), frame.encode());
    let (_, ok) = engine.run_until(Cycles(50_000), |s| {
        s.slaves().radio.stats().transmitted >= 1 && s.is_quiescent()
    });
    assert!(ok, "forward never completed");
    let sys = engine.machine();
    assert!(sys.fault().is_none(), "fault: {:?}", sys.fault());
    sys.busy_cycles().0
}

/// (EP+slave cycles, microcontroller cycles) to handle one irregular
/// (reconfiguration) message with the given parameter byte.
fn ulp_irregular_cycles(param: u8) -> (u64, u64) {
    let prog = stages::app4(SamplePeriod::Cycles(60_000), 0);
    let sys = ulp_system(&prog);
    let mut engine = Engine::new(sys);
    let cmd = Frame::command(0x22, 0x0009, 0x0001, 1, &[param, 0x20, 0x03]).unwrap();
    engine.machine_mut().schedule_rx(Cycles(500), cmd.encode());
    let (_, ok) = engine.run_until(Cycles(50_000), |s| {
        s.mcu().stats().wakeups >= 1 && s.is_quiescent()
    });
    assert!(ok, "irregular event never completed");
    let sys = engine.machine();
    assert!(sys.fault().is_none(), "fault: {:?}", sys.fault());
    let mcu = sys.mcu().stats().active_cycles;
    let total = sys.busy_cycles().0;
    (total.saturating_sub(mcu), mcu)
}

/// Mica2: first probe result for `probe` in `app`, with an optional
/// injected frame.
fn mica_probe(app: &mapps::MicaApp, probe: &str, inject: Option<Frame>) -> u64 {
    let (mut board, probes) = app.board(Box::new(|_| 128));
    if let Some(f) = &inject {
        board.schedule_rx(Cycles(40_000), f.encode());
    }
    let id = probes[probe];
    let mut engine = Engine::new(board);
    engine.run_until_cycle(Cycles(600_000));
    let board = engine.machine();
    assert!(!board.halted(), "Mica2 program halted unexpectedly");
    board
        .probe(id)
        .first()
        .unwrap_or_else(|| panic!("probe `{probe}` never completed"))
}

/// Measure all six Table 4 rows on both platforms.
pub fn measure_table4() -> Vec<Table4Row> {
    let period = SamplePeriod::Cycles(60_000);
    let send_plain = ulp_send_cycles(&stages::app1(period));
    let send_filtered = ulp_send_cycles(&stages::app2(period, 0));
    let forward = ulp_forward_cycles();
    let (irregular_ep, _) = ulp_irregular_cycles(0);
    let (_, timer_change) = ulp_irregular_cycles(1);
    let (_, thresh_change) = ulp_irregular_cycles(2);

    let mica_send = mica_probe(&mapps::app1(1), "send_path", None);
    let mica_send_f = mica_probe(&mapps::app2(1, 50), "send_path_filtered", None);
    let fwd_frame = Frame::data(0x22, 0x0009, 0x0000, 3, &[1]).unwrap();
    let mica_fwd = mica_probe(&mapps::app3(500, 0), "process_regular", Some(fwd_frame));
    let cmd1 = Frame::command(0x22, 0x0009, 0x0001, 1, &[1, 10, 0]).unwrap();
    let cmd2 = Frame::command(0x22, 0x0009, 0x0001, 1, &[2, 99, 0]).unwrap();
    let mica_irr = mica_probe(
        &mapps::app4(500, 0),
        "process_irregular",
        Some(cmd1.clone()),
    );
    let mica_tc = mica_probe(&mapps::app4(500, 0), "timer_change", Some(cmd1));
    let mica_th = mica_probe(&mapps::app4(500, 0), "threshold_change", Some(cmd2));

    vec![
        Table4Row {
            name: "Total send path w/out filter",
            mica: mica_send,
            ulp: send_plain,
            paper_mica: 1522,
            paper_ulp: 102,
        },
        Table4Row {
            name: "Total send path w/ filter",
            mica: mica_send_f,
            ulp: send_filtered,
            paper_mica: 1532,
            paper_ulp: 127,
        },
        Table4Row {
            name: "Process regular message",
            mica: mica_fwd,
            ulp: forward,
            paper_mica: 429,
            paper_ulp: 165,
        },
        Table4Row {
            name: "Process irregular message",
            mica: mica_irr,
            ulp: irregular_ep,
            paper_mica: 234,
            paper_ulp: 136,
        },
        Table4Row {
            name: "Timer change",
            mica: mica_tc,
            ulp: timer_change,
            paper_mica: 11,
            paper_ulp: 114,
        },
        Table4Row {
            name: "Threshold change",
            mica: mica_th,
            ulp: thresh_change,
            paper_mica: 11, // the paper's row is garbled; ~same as timer
            paper_ulp: 114,
        },
    ]
}

/// One SNAP-comparison row (§6.1.3).
#[derive(Debug, Clone)]
pub struct SnapRow {
    /// Application name.
    pub name: &'static str,
    /// Published SNAP cycles.
    pub snap: u64,
    /// Our measured event-driven-system cycles.
    pub ulp: u64,
    /// Our measured Mica2 cycles.
    pub mica: u64,
    /// The paper's reported cycles for its system.
    pub paper_ulp: u64,
    /// The paper's reported Mica2 cycles.
    pub paper_mica: u64,
}

/// Cycles per event for a self-contained periodic ULP app.
fn ulp_per_event(prog: &ulp::UlpProgram, events: u64, horizon: u64) -> u64 {
    let sys = ulp_system(prog);
    let mut engine = Engine::new(sys);
    let (_, ok) = engine.run_until(Cycles(horizon), |s| s.ep().stats().events >= events);
    assert!(ok, "events never completed");
    let sys = engine.machine();
    assert!(sys.fault().is_none());
    sys.busy_cycles().0 / sys.ep().stats().events
}

/// Measure the blink/sense comparison against the published SNAP numbers.
pub fn measure_snap() -> Vec<SnapRow> {
    let ulp_blink = ulp_per_event(&ulp::blink(500), 5, 5_000);
    let ulp_sense = ulp_per_event(&ulp::sense(500), 5, 5_000);
    let mica_blink = mica_probe(&mapps::blink(1), "blink", None);
    let mica_sense = mica_probe(&mapps::sense(1), "sense", None);
    vec![
        SnapRow {
            name: "blink",
            snap: 41,
            ulp: ulp_blink,
            mica: mica_blink,
            paper_ulp: 12,
            paper_mica: 523,
        },
        SnapRow {
            name: "sense",
            snap: 261,
            ulp: ulp_sense,
            mica: mica_sense,
            paper_ulp: 24,
            paper_mica: 1118,
        },
    ]
}

/// Code sizes of the complete stage-4 application on both platforms
/// (the paper: 11558 B on Mica2 vs 180 B on theirs).
pub fn code_sizes() -> (usize, usize) {
    let mica = mapps::app4(100, 50).code_size();
    let ulp = stages::app4(SamplePeriod::Cycles(1000), 50).code_size();
    (mica, ulp)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_shape_holds() {
        let rows = measure_table4();
        assert_eq!(rows.len(), 6);
        for row in &rows {
            assert!(
                row.mica > 0 && row.ulp > 0,
                "{}: empty measurement",
                row.name
            );
        }
        // Send paths: the event-driven system wins by roughly an order
        // of magnitude (paper: 14.9× and 12.1×).
        assert!(
            rows[0].speedup() > 3.0,
            "send w/out filter speedup {} too small",
            rows[0].speedup()
        );
        assert!(rows[1].speedup() > 3.0);
        // Filter adds a modest number of cycles on both platforms.
        assert!(rows[1].ulp > rows[0].ulp);
        // Regular messages still favour the event-driven system.
        assert!(rows[2].speedup() > 1.0, "{}", rows[2].speedup());
        // The microcontroller-handled change is SLOWER than the Mica2's
        // in-memory store — the paper's 0.096× row, the honest cost of
        // waking a cold core.
        assert!(
            rows[4].speedup() < 0.5,
            "timer change must favour Mica2: {}",
            rows[4].speedup()
        );
        assert!(rows[4].mica < 30, "Mica2 timer change is a few stores");
    }

    #[test]
    fn snap_rows_order_correctly() {
        let rows = measure_snap();
        for r in &rows {
            // Ordering: ours < SNAP < Mica2 (the paper's claim).
            assert!(
                r.ulp < r.snap,
                "{}: ours {} should beat SNAP {}",
                r.name,
                r.ulp,
                r.snap
            );
            assert!(
                r.snap < r.mica,
                "{}: SNAP {} should beat Mica2 {}",
                r.name,
                r.snap,
                r.mica
            );
        }
    }

    #[test]
    fn code_size_gap() {
        let (mica, ulp) = code_sizes();
        assert!(
            ulp * 3 < mica,
            "event-driven footprint {ulp} B should be far below Mica2 {mica} B"
        );
        assert!(ulp < 400, "paper reports 180 B; ours is {ulp} B");
    }
}
