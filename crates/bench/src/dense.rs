//! Dense-network co-simulation: thousands of duty-cycled sensor nodes
//! on the spatial channel, sharded across the fleet engine.
//!
//! This is the scale study ROADMAP item 2 asks for and the reproduction
//! target for PAPERS.md's "Energy Efficiency of the IEEE 802.15.4
//! Standard in Dense Wireless Microsensor Networks": as node density
//! rises at fixed duty cycle, the CSMA MAC saturates — backoff
//! deferrals and drops explode and [`DenseSummary::mac_acceptance`]
//! collapses (the *contention-collapse* trend) — while wide, sparse
//! layouts lose frames to hidden-terminal collisions instead
//! ([`DenseSummary::delivery_ratio`]). At fixed density, a longer
//! sample period drives total energy towards the sleep floor (the
//! *sleep-dominance* trend). All three show up as monotone columns in
//! the density sweep this module builds (`tests/net_scale.rs` asserts
//! them; the `fleet --dense` golden pins the exact numbers).
//!
//! # Sharding model
//!
//! A population of `nodes` is split into **tiles** of at most
//! [`TILE_NODES`] nodes. Each tile is an independent square patch of
//! ground sized to hold its nodes at the configured density, and tiles
//! are far enough apart that no transmission crosses tiles (farther
//! than [`ChannelConfig::max_range_m`]): simulating them on separate
//! [`SpatialMedium`]s is *exact*, not an approximation. A tile run is a
//! pure function of `(config, tile index)` — every random draw (node
//! placement, sensor walks, CSMA backoff) is keyed by identity, never
//! by call order — so the fleet engine can scatter tiles across any
//! number of workers and the grid-order merge is byte-identical
//! whatever the shard/thread count. [`run_dense`] (serial fold) and
//! [`aggregate`] (fold over fleet rows) produce identical summaries,
//! including the floating-point energy total, because both fold in
//! tile order.
//!
//! # Workload
//!
//! Every node runs the stage-1 monitoring application (sample, packetize,
//! transmit; radio otherwise off) at the configured `duty` period, plus
//! one listening *sink* endpoint at the tile centre. Senders do not
//! listen — the density study measures channel contention and sender
//! energy, not routing — so medium deliveries to sender endpoints are
//! classified by the channel and then discarded.

use ulp_apps::ulp::{monitoring, AppStage, MonitoringConfig, SamplePeriod};
use ulp_core::slaves::RandomWalkSensor;
use ulp_core::{System, SystemConfig};
use ulp_net::{ChannelConfig, EventWheel, SpatialMedium};
use ulp_sim::{Cycles, Simulatable, StepOutcome};
use ulp_testkit::Rng;

use crate::cosim::SLOT_US;
use crate::fleet::{Cell, Coords, Sweep, SweepResults};

/// Maximum nodes per tile: the shard unit. Small enough that one tile
/// is milliseconds of work, large enough that intra-tile contention is
/// the dominant effect at the densities swept.
pub const TILE_NODES: usize = 64;

/// One dense-network scenario: a population at a density and duty
/// cycle, on a seeded channel.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseConfig {
    /// Total population across all tiles.
    pub nodes: usize,
    /// Node density, nodes per hectare (100 m × 100 m). Higher density
    /// packs the same transmitters into less ground, raising contention.
    pub density_per_ha: f64,
    /// Sample (= transmit) period per node, cycles at 100 kHz.
    pub duty: u16,
    /// Simulation horizon in 10 µs slots (= node cycles).
    pub horizon_slots: u64,
    /// Master seed: placement, sensors and CSMA backoff all derive
    /// from it by identity-keyed mixing.
    pub seed: u64,
}

impl Default for DenseConfig {
    fn default() -> DenseConfig {
        DenseConfig {
            nodes: 1_024,
            density_per_ha: 25.0,
            duty: 5_000,
            horizon_slots: 20_000,
            seed: 11,
        }
    }
}

impl DenseConfig {
    /// Number of tiles (shards) this population splits into.
    pub fn tiles(&self) -> usize {
        self.nodes.div_ceil(TILE_NODES).max(1)
    }

    /// Node count of tile `t` (the last tile takes the remainder).
    pub fn tile_nodes(&self, t: usize) -> usize {
        let full = self.nodes / TILE_NODES;
        if t < full {
            TILE_NODES
        } else {
            self.nodes - full * TILE_NODES
        }
    }

    /// Side length, meters, of the square patch holding `k` nodes at
    /// the configured density.
    pub fn side_m(&self, k: usize) -> f64 {
        // k nodes / (density per 10_000 m²)  →  area; side = √area.
        (k as f64 / self.density_per_ha * 10_000.0).sqrt()
    }
}

/// Scalar summary of a dense run — of one tile, or of a whole
/// population via [`DenseSummary::absorb`]. Integer fields are exact
/// sums; `energy_j` is summed in tile order everywhere, so even the
/// float is identical between the serial and sharded paths.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DenseSummary {
    /// Nodes simulated (excluding sink endpoints).
    pub nodes: u64,
    /// Tiles folded into this summary.
    pub tiles: u64,
    /// Transmit requests handed to the channel.
    pub requests: u64,
    /// Frames that made it onto the air (passed CCA).
    pub sent: u64,
    /// CSMA deferrals (retries, not terminal).
    pub deferrals: u64,
    /// Frames dropped after exhausting CSMA backoff attempts.
    pub dropped_csma: u64,
    /// (frame, receiver) pairs delivered intact.
    pub delivered: u64,
    /// (frame, receiver) pairs corrupted by overlapping transmissions.
    pub collided: u64,
    /// (frame, receiver) pairs below the sensitivity threshold.
    pub faded: u64,
    /// (frame, receiver) pairs lost to half-duplex deafness.
    pub deaf: u64,
    /// Frames the tile sinks heard (arrival within the horizon).
    pub sink_heard: u64,
    /// Radio transmissions summed over all nodes.
    pub radio_tx: u64,
    /// Microcontroller wakeups summed over all nodes.
    pub mcu_wakeups: u64,
    /// Total node energy, joules.
    pub energy_j: f64,
    /// Scheduler events processed: node activations plus channel wheel
    /// events (CCA senses and TX ends). The numerator of the
    /// sim-events/sec figure `BENCH_net.json` tracks; compare against
    /// `nodes × horizon_slots` touches for a slot-stepped loop.
    pub events: u64,
}

impl DenseSummary {
    /// Fold another tile (or partial aggregate) into this one.
    pub fn absorb(&mut self, t: &DenseSummary) {
        self.nodes += t.nodes;
        self.tiles += t.tiles;
        self.requests += t.requests;
        self.sent += t.sent;
        self.deferrals += t.deferrals;
        self.dropped_csma += t.dropped_csma;
        self.delivered += t.delivered;
        self.collided += t.collided;
        self.faded += t.faded;
        self.deaf += t.deaf;
        self.sink_heard += t.sink_heard;
        self.radio_tx += t.radio_tx;
        self.mcu_wakeups += t.mcu_wakeups;
        self.energy_j += t.energy_j;
        self.events += t.events;
    }

    /// Fraction of *audible* (frame, receiver) pairs delivered intact —
    /// fading is excluded because out-of-range pairs are geometry, not
    /// contention. 1.0 on an idle channel, collapsing towards 0 as
    /// overlapping transmissions corrupt each other.
    pub fn delivery_ratio(&self) -> f64 {
        let pairs = self.delivered + self.collided + self.deaf;
        if pairs == 0 {
            1.0
        } else {
            self.delivered as f64 / pairs as f64
        }
    }

    /// Fraction of transmit requests the MAC actually got onto the air
    /// (the rest died in CSMA backoff). This is the contention-collapse
    /// axis for dense populations: with everyone in carrier-sense range
    /// the channel saturates and acceptance falls, while collisions
    /// stay rare — those belong to *wide* layouts, where hidden
    /// terminals defeat CCA and show up in [`delivery_ratio`] instead.
    ///
    /// [`delivery_ratio`]: DenseSummary::delivery_ratio
    pub fn mac_acceptance(&self) -> f64 {
        if self.requests == 0 {
            1.0
        } else {
            self.sent as f64 / self.requests as f64
        }
    }

    /// Mean node power over the horizon, microwatts.
    pub fn avg_power_uw(&self, horizon_slots: u64) -> f64 {
        let seconds = horizon_slots as f64 * SLOT_US as f64 * 1e-6;
        if self.nodes == 0 || seconds == 0.0 {
            0.0
        } else {
            self.energy_j / self.nodes as f64 / seconds * 1e6
        }
    }
}

/// Simulate one tile. A pure function of `(cfg, tile)`: the channel
/// seed, node placement, and sensor walks are all identity-keyed mixes
/// of `cfg.seed` and the tile/node indices, so tiles can run in any
/// order on any worker.
///
/// # Panics
///
/// Panics if a node faults or halts, or if the drained channel violates
/// its conservation invariant — a broken tile must abort the sweep with
/// its coordinates, not leak a bad row.
pub fn run_tile(cfg: &DenseConfig, tile: usize) -> DenseSummary {
    let k = cfg.tile_nodes(tile);
    if k == 0 {
        return DenseSummary::default();
    }
    let side = cfg.side_m(k);
    let mut medium = SpatialMedium::new(ChannelConfig {
        seed: cfg.seed ^ (tile as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        ..ChannelConfig::default()
    });
    let sink = medium.place(side / 2.0, side / 2.0);
    let mut placer = Rng::from_seed(cfg.seed ^ 0xD15E ^ ((tile as u64) << 32));
    let mut nodes: Vec<(usize, System)> = (0..k)
        .map(|i| {
            let program = monitoring(&MonitoringConfig {
                stage: AppStage::SampleSend,
                period: SamplePeriod::Cycles(cfg.duty),
                samples_per_packet: 1,
                threshold: 0,
            });
            let config = SystemConfig {
                address: 2 + (tile * TILE_NODES + i) as u16,
                dest: 0x0000,
                ..SystemConfig::default()
            };
            let sensor = RandomWalkSensor::new(
                90,
                cfg.seed ^ ((tile * TILE_NODES + i) as u64).wrapping_mul(0x2545_F491_4F6C_DD1D),
            );
            let sys = program.build_system(config, Box::new(sensor));
            (medium.place(placer.f64() * side, placer.f64() * side), sys)
        })
        .collect();

    // Event-driven node schedule: only wake a node for its next timer
    // event or to continue a busy span. Senders never receive, so the
    // channel never wakes anyone.
    let horizon = cfg.horizon_slots;
    let mut pending: Vec<Option<u64>> = vec![None; k];
    let mut wheel: EventWheel<usize> = EventWheel::new();
    let mut activations = 0u64;
    let schedule_act =
        |wheel: &mut EventWheel<usize>, pending: &mut Vec<Option<u64>>, i: usize, c: u64| {
            if c <= horizon && pending[i].is_none_or(|c0| c < c0) {
                pending[i] = Some(c);
                wheel.schedule(c, i);
            }
        };
    for i in 0..k {
        schedule_act(&mut wheel, &mut pending, i, 1); // boot
    }
    while let Some(c) = wheel.peek_time() {
        let mut batch: Vec<usize> = Vec::new();
        while wheel.peek_time() == Some(c) {
            let (_, i) = wheel.pop().expect("peeked entry must pop");
            if pending[i] == Some(c) {
                batch.push(i);
            }
        }
        batch.sort_unstable();
        batch.dedup();
        for i in batch {
            pending[i] = None;
            activations += 1;
            let (med_id, node) = &mut nodes[i];
            let outcome = advance_to(node, Cycles(c), tile, i);
            for (at, bytes) in node.take_outbox() {
                medium.transmit(*med_id, at.0 * SLOT_US, &bytes);
            }
            let next = match outcome {
                StepOutcome::Busy => Some(c + 1),
                _ => node.next_wakeup().map(|w| w.0.max(c) + 1),
            };
            if let Some(n) = next {
                schedule_act(&mut wheel, &mut pending, i, n);
            }
        }
    }
    // Idle tails: sleep energy accrues to the horizon even when nothing
    // else happens there.
    for (i, (_, node)) in nodes.iter_mut().enumerate() {
        advance_to(node, Cycles(horizon), tile, i);
    }
    // Resolve every in-flight CSMA retry and TX so the conservation
    // invariant holds over the drained channel; the sink only counts
    // arrivals inside the horizon.
    medium.advance(horizon * SLOT_US);
    while let Some(t) = medium.next_event_time() {
        medium.advance(t);
    }
    let sink_heard = medium
        .poll(sink, u64::MAX)
        .iter()
        .filter(|d| d.at_us <= horizon * SLOT_US)
        .count() as u64;

    let stats = medium.stats();
    assert!(
        stats.conserves(k as u64 + 1),
        "tile {tile}: channel books don't balance: {stats:?}"
    );
    let mut s = DenseSummary {
        nodes: k as u64,
        tiles: 1,
        requests: stats.requests,
        sent: stats.sent,
        deferrals: stats.deferrals,
        dropped_csma: stats.dropped_csma,
        delivered: stats.delivered,
        collided: stats.collided,
        faded: stats.faded,
        deaf: stats.deaf,
        sink_heard,
        // Activations + channel wheel events (one CCA sense per request
        // and per deferral, one TX-end per sent frame).
        events: activations + stats.requests + stats.deferrals + stats.sent,
        ..DenseSummary::default()
    };
    for (med_id, node) in &nodes {
        assert!(
            node.fault().is_none(),
            "tile {tile}, medium node {med_id}: faulted: {:?}",
            node.fault()
        );
        s.radio_tx += node.slaves().radio.stats().transmitted;
        s.mcu_wakeups += node.mcu().stats().wakeups;
        s.energy_j += node.meter().total_energy().joules();
    }
    s
}

/// Engine-style advance: step busy cycles, lump idle spans with
/// `skip_to`, stop at `target`.
fn advance_to(node: &mut System, target: Cycles, tile: usize, i: usize) -> StepOutcome {
    let mut outcome = StepOutcome::Idle;
    while node.now() < target {
        outcome = node.step();
        match outcome {
            StepOutcome::Busy => {}
            StepOutcome::Halted => panic!("tile {tile}, node {i} halted"),
            StepOutcome::Idle => {
                let now = node.now();
                let skip = match node.next_wakeup() {
                    Some(w) if w > now => w.min(target),
                    Some(_) => continue,
                    None => target,
                };
                if skip > now {
                    node.skip_to(skip);
                }
            }
        }
    }
    outcome
}

/// Run a whole scenario serially: fold every tile in tile order.
pub fn run_dense(cfg: &DenseConfig) -> DenseSummary {
    let mut total = DenseSummary::default();
    for t in 0..cfg.tiles() {
        total.absorb(&run_tile(cfg, t));
    }
    total
}

/// Metric columns of one tile row, in declaration order.
pub const DENSE_METRICS: &[&str] = &[
    "tile_nodes",
    "requests",
    "sent",
    "deferrals",
    "dropped_csma",
    "delivered",
    "collided",
    "faded",
    "deaf",
    "sink_heard",
    "radio_tx",
    "mcu_wakeups",
    "energy_j",
    "events",
];

fn dense_cells(s: &DenseSummary) -> Vec<Cell> {
    vec![
        Cell::U64(s.nodes),
        Cell::U64(s.requests),
        Cell::U64(s.sent),
        Cell::U64(s.deferrals),
        Cell::U64(s.dropped_csma),
        Cell::U64(s.delivered),
        Cell::U64(s.collided),
        Cell::U64(s.faded),
        Cell::U64(s.deaf),
        Cell::U64(s.sink_heard),
        Cell::U64(s.radio_tx),
        Cell::U64(s.mcu_wakeups),
        Cell::F64(s.energy_j),
        Cell::U64(s.events),
    ]
}

/// Build the sharded sweep for a set of scenarios: one grid point per
/// (scenario, tile), in scenario-major tile order, so the fleet
/// engine's grid-order merge reassembles populations deterministically
/// whatever the worker count.
pub fn dense_sweep(scenarios: &[DenseConfig]) -> Sweep<(DenseConfig, usize)> {
    let mut sweep = Sweep::new("dense-network", DENSE_METRICS);
    for cfg in scenarios {
        for tile in 0..cfg.tiles() {
            sweep.push(
                Coords::new()
                    .with("nodes", cfg.nodes)
                    .with("density", cfg.density_per_ha)
                    .with("duty", cfg.duty)
                    .with("seed", cfg.seed)
                    .with("tile", tile),
                (cfg.clone(), tile),
            );
        }
    }
    sweep
}

/// The per-point evaluator for [`dense_sweep`]'s grid.
pub fn dense_eval(_: &Coords, point: &(DenseConfig, usize)) -> Vec<Cell> {
    dense_cells(&run_tile(&point.0, point.1))
}

/// Canonical description of everything that determines one tile's
/// result, for the campaign store's content address
/// (`ulp_bench::store::canonical_key`). Covers *all* [`DenseConfig`]
/// fields plus the tile index — the sweep coordinates omit the horizon.
pub fn dense_store_key(_: &Coords, point: &(DenseConfig, usize)) -> String {
    let (cfg, tile) = point;
    format!(
        "dense:nodes={};density={};duty={};slots={};seed={};tile={tile}",
        cfg.nodes, cfg.density_per_ha, cfg.duty, cfg.horizon_slots, cfg.seed
    )
}

/// Fold a scenario's rows (grid order = tile order) back into one
/// [`DenseSummary`] per scenario, keyed by `(nodes, density, duty,
/// seed)` coordinates in first-appearance order. Identical to calling
/// [`run_dense`] per scenario — including the energy float, which both
/// paths sum in tile order.
pub fn aggregate(results: &SweepResults) -> Vec<(Coords, DenseSummary)> {
    let col = |name: &str| {
        results
            .columns()
            .iter()
            .position(|c| c == name)
            .unwrap_or_else(|| panic!("dense results missing column {name}"))
    };
    let u = |row: &[Cell], name: &str| match &row[col(name)] {
        Cell::U64(n) => *n,
        other => panic!("column {name} is not a count: {other:?}"),
    };
    let mut out: Vec<(Coords, DenseSummary)> = Vec::new();
    for row in results.rows() {
        let key = |axis: &str| {
            row[col(axis)].to_string()
        };
        let coords = Coords::new()
            .with("nodes", key("nodes"))
            .with("density", key("density"))
            .with("duty", key("duty"))
            .with("seed", key("seed"));
        let tile = DenseSummary {
            nodes: u(row, "tile_nodes"),
            tiles: 1,
            requests: u(row, "requests"),
            sent: u(row, "sent"),
            deferrals: u(row, "deferrals"),
            dropped_csma: u(row, "dropped_csma"),
            delivered: u(row, "delivered"),
            collided: u(row, "collided"),
            faded: u(row, "faded"),
            deaf: u(row, "deaf"),
            sink_heard: u(row, "sink_heard"),
            radio_tx: u(row, "radio_tx"),
            mcu_wakeups: u(row, "mcu_wakeups"),
            energy_j: match &row[col("energy_j")] {
                Cell::F64(j) => *j,
                other => panic!("energy_j is not a float: {other:?}"),
            },
            events: u(row, "events"),
        };
        match out.last_mut() {
            Some((c, agg)) if *c == coords => agg.absorb(&tile),
            _ => out.push((coords, tile)),
        }
    }
    out
}

/// Render the aggregated per-scenario table for a dense sweep's
/// results: the deterministic stdout of `fleet --dense`, pinned
/// byte-for-byte by `tests/golden.rs`. Derived ratios are formatted to
/// fixed precision; every other column is an exact counter.
pub fn dense_report(results: &SweepResults) -> String {
    let mut out = String::from(
        "Dense-network density sweep (spatial channel, event-wheel medium)\n\
         one row per scenario, tiles merged in grid order\n\n",
    );
    let mut t = crate::TableWriter::new(&[
        "Nodes", "Dens/ha", "Duty", "Seed", "Req", "Sent", "Accept", "Deliv", "Collide",
        "DelivRatio", "Drop", "SinkHeard", "Wakeups", "Energy", "Events",
    ]);
    for (coords, s) in aggregate(results) {
        let c = |axis: &str| coords.get(axis).unwrap_or("?").to_string();
        t.row(&[
            c("nodes"),
            c("density"),
            c("duty"),
            c("seed"),
            s.requests.to_string(),
            s.sent.to_string(),
            format!("{:.3}", s.mac_acceptance()),
            s.delivered.to_string(),
            s.collided.to_string(),
            format!("{:.3}", s.delivery_ratio()),
            s.dropped_csma.to_string(),
            s.sink_heard.to_string(),
            s.mcu_wakeups.to_string(),
            format!("{:.3} mJ", s.energy_j * 1e3),
            s.events.to_string(),
        ]);
    }
    out.push_str(&t.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> DenseConfig {
        DenseConfig {
            nodes: 48,
            density_per_ha: 50.0,
            duty: 2_000,
            horizon_slots: 8_000,
            seed: 3,
        }
    }

    /// One small tile: nodes sample and transmit, the sink hears
    /// frames, the channel books balance, and the wheel does far less
    /// work than a slot-stepped loop would.
    #[test]
    fn tile_runs_and_conserves() {
        let cfg = tiny();
        let s = run_tile(&cfg, 0);
        assert_eq!(s.nodes, 48);
        assert!(s.requests > 0, "duty-cycled senders must transmit: {s:?}");
        assert!(s.sink_heard > 0, "sink must hear someone: {s:?}");
        assert!(s.energy_j > 0.0);
        assert!(
            s.events < s.nodes * cfg.horizon_slots / 10,
            "event wheel should do <10% of slot-stepped touches: {} vs {}",
            s.events,
            s.nodes * cfg.horizon_slots
        );
    }

    /// Serial fold and the fleet path agree exactly — counters and the
    /// energy float — and the fleet path is worker-count invariant.
    #[test]
    fn sharded_run_matches_serial_for_any_worker_count() {
        let cfg = DenseConfig {
            nodes: 100, // 1 full tile + a 36-node remainder tile
            ..tiny()
        };
        let serial = run_dense(&cfg);
        assert_eq!(serial.tiles, 2);
        let sweep = dense_sweep(std::slice::from_ref(&cfg));
        for threads in [1usize, 2, 4] {
            let results = sweep.run(threads, dense_eval).expect("dense sweep");
            let agg = aggregate(&results);
            assert_eq!(agg.len(), 1);
            assert_eq!(
                agg[0].1, serial,
                "sharded aggregate diverged at {threads} workers"
            );
        }
    }

    /// Density is the contention knob: packing the same population
    /// tighter must not increase the delivery ratio.
    #[test]
    fn density_drives_contention() {
        let sparse = run_dense(&DenseConfig {
            density_per_ha: 5.0,
            ..tiny()
        });
        let dense = run_dense(&DenseConfig {
            density_per_ha: 2_000.0,
            ..tiny()
        });
        assert!(
            dense.mac_acceptance() < sparse.mac_acceptance(),
            "the MAC must saturate with crowding: sparse {} dense {}",
            sparse.mac_acceptance(),
            dense.mac_acceptance()
        );
        assert!(
            dense.dropped_csma + dense.deferrals > sparse.dropped_csma + sparse.deferrals,
            "crowding must show up as CSMA pressure: sparse {sparse:?} dense {dense:?}"
        );
        // The sparse/wide layout is the hidden-terminal regime: CCA
        // can't hear distant transmitters, so corruption happens on the
        // air instead of being deferred away.
        assert!(
            sparse.delivery_ratio() < dense.delivery_ratio(),
            "hidden terminals must corrupt wide layouts: sparse {} dense {}",
            sparse.delivery_ratio(),
            dense.delivery_ratio()
        );
    }

    /// Duty is the energy knob: sampling less often must cost less,
    /// approaching the sleep floor.
    #[test]
    fn longer_duty_approaches_sleep_floor() {
        let busy = run_dense(&DenseConfig { duty: 1_000, ..tiny() });
        let lazy = run_dense(&DenseConfig { duty: 6_000, ..tiny() });
        assert!(
            lazy.energy_j < busy.energy_j,
            "sleep must dominate at long duty: busy {} J lazy {} J",
            busy.energy_j,
            lazy.energy_j
        );
        assert!(lazy.requests < busy.requests);
    }
}
