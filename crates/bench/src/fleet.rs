//! Deterministic parallel sweep engine.
//!
//! The paper's evaluation is a grid of *independent* simulator runs —
//! the Figure 6 duty-cycle sweep, the Table 4/5 event pairs, the
//! multi-node lossy co-simulations — and every one of them used to run
//! serially on one core. This module turns such a grid into a
//! [`Sweep`]: a named list of scenario points (each a [`Coords`] tuple
//! of `axis=value` pairs plus an opaque payload), executed by a
//! self-balancing worker pool built on [`std::thread::scope`] — zero
//! external dependencies, per the workspace's offline constraint.
//!
//! # Determinism contract
//!
//! Workers pull points from a shared atomic queue in whatever order the
//! scheduler allows, but results are **merged back in grid order**, so
//! the serialized [`SweepResults`] ([`to_csv`](SweepResults::to_csv) /
//! [`to_json`](SweepResults::to_json)) are byte-identical regardless of
//! thread count. `ULP_FLEET_THREADS=1` and `=N` must — and are
//! golden-checked to — produce the same bytes, provided the per-point
//! closure is a pure function of its coordinates and payload (which
//! every simulator in this workspace is: see `tests/determinism.rs`).
//!
//! A panicking point does not poison the sweep: the remaining points
//! still run, and the engine reports *which* grid point failed, with
//! its full scenario coordinates, in [`FleetError`].
//!
//! # Example
//!
//! ```
//! use ulp_bench::fleet::{Cell, Coords, Sweep};
//!
//! let mut sweep = Sweep::new("squares", &["square"]);
//! for n in 0..8u64 {
//!     sweep.push(Coords::new().with("n", n), n);
//! }
//! let serial = sweep.run(1, |_, &n| vec![Cell::U64(n * n)]).unwrap();
//! let parallel = sweep.run(4, |_, &n| vec![Cell::U64(n * n)]).unwrap();
//! assert_eq!(serial.to_csv(), parallel.to_csv()); // grid-order merge
//! assert!(serial.to_csv().starts_with("n,square\n0,0\n1,1\n"));
//! ```

use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};
use ulp_sim::perf::PerfSnapshot;

/// Number of worker threads a sweep should use: `ULP_FLEET_THREADS` if
/// set to a positive integer, otherwise [`std::thread::available_parallelism`]
/// (falling back to 1 where that is unavailable).
pub fn fleet_threads() -> usize {
    if let Ok(v) = std::env::var("ULP_FLEET_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// The coordinates of one scenario point: an ordered list of
/// `axis = value` pairs (app × duty × seed × node-count × loss-rate ×
/// …). Ordering is significant — it defines the CSV/JSON column order
/// and the grid order results are merged in.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Coords {
    pairs: Vec<(String, String)>,
}

impl Coords {
    /// An empty coordinate tuple.
    pub fn new() -> Coords {
        Coords::default()
    }

    /// Append one `axis = value` coordinate (builder style).
    pub fn with(mut self, axis: &str, value: impl fmt::Display) -> Coords {
        self.pairs.push((axis.to_string(), value.to_string()));
        self
    }

    /// The axis names, in order.
    pub fn axes(&self) -> impl Iterator<Item = &str> + '_ {
        self.pairs.iter().map(|(a, _)| a.as_str())
    }

    /// The values, in axis order.
    pub fn values(&self) -> impl Iterator<Item = &str> + '_ {
        self.pairs.iter().map(|(_, v)| v.as_str())
    }

    /// The value of a named axis, if present.
    pub fn get(&self, axis: &str) -> Option<&str> {
        self.pairs
            .iter()
            .find(|(a, _)| a == axis)
            .map(|(_, v)| v.as_str())
    }
}

impl fmt::Display for Coords {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, (a, v)) in self.pairs.iter().enumerate() {
            if i > 0 {
                f.write_str(" ")?;
            }
            write!(f, "{a}={v}")?;
        }
        Ok(())
    }
}

/// One result cell. Numeric cells serialize as JSON numbers; text
/// cells are CSV-quoted / JSON-escaped as needed.
#[derive(Debug, Clone, PartialEq)]
pub enum Cell {
    /// An exact integer (cycle counts, packet counts, …).
    U64(u64),
    /// A measured floating-point quantity (energy, power, ratios).
    /// Must be finite — the engine rejects NaN/infinity so the JSON
    /// export stays well-formed.
    F64(f64),
    /// Free text.
    Text(String),
}

impl fmt::Display for Cell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Cell::U64(n) => write!(f, "{n}"),
            // `{}` on f64 is Rust's shortest-roundtrip formatting:
            // deterministic across platforms, exact on re-parse.
            Cell::F64(x) => write!(f, "{x}"),
            Cell::Text(s) => f.write_str(s),
        }
    }
}

/// A point that panicked, with its scenario coordinates and the panic
/// message.
#[derive(Debug, Clone)]
pub struct PointFailure {
    /// Zero-based index of the point in grid order.
    pub index: usize,
    /// The point's full scenario coordinates.
    pub coords: Coords,
    /// The panic payload, stringified.
    pub message: String,
}

/// One or more grid points panicked. Every *other* point still ran;
/// the error lists each failing point with its coordinates so a
/// thousand-point sweep pinpoints the bad scenario immediately.
#[derive(Debug, Clone)]
pub struct FleetError {
    /// Name of the sweep that failed.
    pub sweep: String,
    /// Every failing point, in grid order.
    pub failures: Vec<PointFailure>,
}

impl fmt::Display for FleetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "sweep `{}`: {} of its grid points failed:",
            self.sweep,
            self.failures.len()
        )?;
        for p in &self.failures {
            writeln!(f, "  point #{} [{}]: {}", p.index, p.coords, p.message)?;
        }
        Ok(())
    }
}

impl std::error::Error for FleetError {}

/// Observer of sweep progress. [`Sweep::run_observed`] calls
/// [`point_done`](SweepObserver::point_done) after each grid point
/// completes — from whichever worker thread ran the point, in
/// completion (not grid) order — so a progress meter can stream
/// heartbeats while the grid drains. Observers must not affect the
/// results: they see indices and coordinates, never cells.
pub trait SweepObserver: Sync {
    /// One grid point finished (successfully or not).
    fn point_done(&self, index: usize, coords: &Coords);
}

/// The no-op observer [`Sweep::run`] uses: observing nothing costs
/// nothing.
impl SweepObserver for () {
    fn point_done(&self, _index: usize, _coords: &Coords) {}
}

/// A grid of scenario points awaiting execution. `P` is the opaque
/// per-point payload handed to the worker closure (alongside the
/// point's [`Coords`]).
#[derive(Debug, Clone)]
pub struct Sweep<P> {
    name: String,
    metric_columns: Vec<String>,
    points: Vec<(Coords, P)>,
}

impl<P: Sync> Sweep<P> {
    /// A new, empty sweep. `metric_columns` names the cells every
    /// point's closure must return, in order; the coordinate axes are
    /// prepended automatically when results are serialized.
    pub fn new(name: &str, metric_columns: &[&str]) -> Sweep<P> {
        Sweep {
            name: name.to_string(),
            metric_columns: metric_columns.iter().map(|s| s.to_string()).collect(),
            points: Vec::new(),
        }
    }

    /// Append a scenario point. Every point must use the same axis
    /// names in the same order ([`run`](Sweep::run) asserts this).
    pub fn push(&mut self, coords: Coords, payload: P) {
        self.points.push((coords, payload));
    }

    /// Number of grid points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the sweep has no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The sweep's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The points, in grid order.
    pub fn points(&self) -> impl Iterator<Item = &(Coords, P)> + '_ {
        self.points.iter()
    }

    /// The metric column names (without the coordinate axes), for the
    /// store's cache-aware execution path.
    pub(crate) fn metric_columns(&self) -> &[String] {
        &self.metric_columns
    }

    /// Execute every point on `threads` workers and merge the results
    /// in grid order. The closure must be a pure function of its
    /// arguments for the determinism contract to hold, and must return
    /// exactly one [`Cell`] per metric column.
    ///
    /// Panics *inside* the closure are caught per point and surfaced
    /// as a [`FleetError`] naming the failing coordinates; the other
    /// points still complete.
    ///
    /// # Panics
    ///
    /// Panics on malformed sweeps (inconsistent axis names between
    /// points, wrong cell count from the closure, non-finite [`Cell::F64`]) —
    /// those are bugs in the sweep definition, not in a scenario.
    pub fn run<F>(&self, threads: usize, f: F) -> Result<SweepResults, FleetError>
    where
        F: Fn(&Coords, &P) -> Vec<Cell> + Sync,
    {
        self.run_observed(threads, f, &())
    }

    /// [`run`](Sweep::run) with a progress [`SweepObserver`]. The
    /// observer is notified after each point completes; it cannot
    /// influence execution or results, so the serialized output stays
    /// byte-identical with and without one (golden-checked by the
    /// no-observer-effect tests).
    pub fn run_observed<F>(
        &self,
        threads: usize,
        f: F,
        observer: &(impl SweepObserver + ?Sized),
    ) -> Result<SweepResults, FleetError>
    where
        F: Fn(&Coords, &P) -> Vec<Cell> + Sync,
    {
        let n = self.points.len();
        let axis_names: Vec<String> = self
            .points
            .first()
            .map(|(c, _)| c.axes().map(str::to_string).collect())
            .unwrap_or_default();
        for (coords, _) in &self.points {
            assert!(
                coords.axes().eq(axis_names.iter().map(String::as_str)),
                "sweep `{}`: point [{coords}] disagrees with the grid axes {axis_names:?}",
                self.name
            );
        }

        /// One grid point's outcome: its metric cells, or the panic
        /// message of a failed evaluation.
        type Slot = Option<Result<Vec<Cell>, String>>;

        let threads = threads.clamp(1, n.max(1));
        let started = Instant::now();
        let next = AtomicUsize::new(0);
        let slots: Mutex<Vec<Slot>> = Mutex::new(vec![None; n]);

        std::thread::scope(|scope| {
            let worker = || {
                // Self-balancing work queue: each worker claims the next
                // unclaimed grid index until the grid is drained, so a
                // slow point never stalls the rest of the grid behind a
                // static partition.
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let (coords, payload) = &self.points[i];
                    let outcome = catch_unwind(AssertUnwindSafe(|| f(coords, payload)))
                        .map_err(|panic| panic_message(&*panic));
                    slots.lock().unwrap()[i] = Some(outcome);
                    observer.point_done(i, coords);
                }
            };
            // The current thread is worker 0; spawn the other N-1.
            let handles: Vec<_> = (1..threads).map(|_| scope.spawn(worker)).collect();
            worker();
            for h in handles {
                // Workers cannot panic: every point is unwind-caught and
                // the closure's result is moved, not shared.
                h.join().expect("fleet worker must not panic");
            }
        });
        let elapsed = started.elapsed();

        let slots = slots.into_inner().unwrap();
        let mut rows = Vec::with_capacity(n);
        let mut failures = Vec::new();
        for (i, slot) in slots.into_iter().enumerate() {
            let (coords, _) = &self.points[i];
            match slot.expect("every grid index was claimed exactly once") {
                Ok(cells) => {
                    assert_eq!(
                        cells.len(),
                        self.metric_columns.len(),
                        "sweep `{}`: point [{coords}] returned {} cells for {} metric columns",
                        self.name,
                        cells.len(),
                        self.metric_columns.len()
                    );
                    for (cell, col) in cells.iter().zip(&self.metric_columns) {
                        if let Cell::F64(x) = cell {
                            assert!(
                                x.is_finite(),
                                "sweep `{}`: point [{coords}] metric `{col}` is not finite ({x})",
                                self.name
                            );
                        }
                    }
                    let mut row: Vec<Cell> =
                        coords.values().map(|v| Cell::Text(v.to_string())).collect();
                    row.extend(cells);
                    rows.push(row);
                }
                Err(message) => failures.push(PointFailure {
                    index: i,
                    coords: coords.clone(),
                    message,
                }),
            }
        }
        if !failures.is_empty() {
            return Err(FleetError {
                sweep: self.name.clone(),
                failures,
            });
        }

        let mut columns = axis_names;
        columns.extend(self.metric_columns.iter().cloned());
        Ok(SweepResults {
            name: self.name.clone(),
            columns,
            rows,
            threads,
            elapsed,
        })
    }
}

fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// The machine-readable result store of one sweep execution: one row
/// per grid point, in grid order, each row = coordinate values followed
/// by metric cells. Wall-clock metadata ([`elapsed`](SweepResults::elapsed),
/// [`threads`](SweepResults::threads)) is deliberately **not** part of
/// the serialized output, so the bytes stay thread-count-invariant.
#[derive(Debug, Clone)]
pub struct SweepResults {
    name: String,
    columns: Vec<String>,
    rows: Vec<Vec<Cell>>,
    threads: usize,
    elapsed: Duration,
}

impl SweepResults {
    /// Crate-internal assembler for `ulp_bench::store`'s cache-aware
    /// execution path, which merges served and computed rows outside
    /// [`Sweep::run`]. Callers are responsible for grid-order rows and
    /// axis-consistent columns — exactly what `run_stored` guarantees.
    pub(crate) fn from_parts(
        name: String,
        columns: Vec<String>,
        rows: Vec<Vec<Cell>>,
        threads: usize,
        elapsed: Duration,
    ) -> SweepResults {
        SweepResults {
            name,
            columns,
            rows,
            threads,
            elapsed,
        }
    }

    /// The sweep's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Column names: coordinate axes first, then metric columns.
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// The result rows, in grid order.
    pub fn rows(&self) -> &[Vec<Cell>] {
        &self.rows
    }

    /// How many worker threads the execution actually used.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Wall-clock time of the execution (not serialized).
    pub fn elapsed(&self) -> Duration {
        self.elapsed
    }

    /// The execution as a host [`PerfSnapshot`]: the grid size under a
    /// `fleet.points` counter against the run's wall-clock. Every
    /// points/sec figure in the workspace (speedup reports, `--progress`
    /// heartbeats) derives from this snapshot's
    /// [`rate`](PerfSnapshot::rate), which yields `None` instead of a
    /// non-finite value — one code path, no ad-hoc wall-clock division.
    pub fn perf(&self) -> PerfSnapshot {
        PerfSnapshot::from_host(
            self.elapsed,
            vec![("fleet.points".to_string(), self.rows.len() as u64)],
        )
    }

    /// One metric cell, addressed by row index and column name.
    pub fn cell(&self, row: usize, column: &str) -> Option<&Cell> {
        let c = self.columns.iter().position(|c| c == column)?;
        self.rows.get(row)?.get(c)
    }

    /// Deterministic CSV serialization (header + one line per grid
    /// point; RFC-4180 quoting for cells containing `, " \n`).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let header: Vec<String> = self.columns.iter().map(|c| csv_escape(c)).collect();
        out.push_str(&header.join(","));
        out.push('\n');
        for row in &self.rows {
            let cells: Vec<String> = row.iter().map(|c| csv_escape(&c.to_string())).collect();
            out.push_str(&cells.join(","));
            out.push('\n');
        }
        out
    }

    /// Deterministic JSON serialization, validated in tests by the
    /// in-tree parser (`ulp_sim::telemetry::validate_json`):
    ///
    /// ```json
    /// {"sweep": "...", "columns": ["..."], "rows": [["...", 1, 2.5]]}
    /// ```
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"sweep\":");
        json_string(&mut out, &self.name);
        out.push_str(",\"columns\":[");
        for (i, c) in self.columns.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json_string(&mut out, c);
        }
        out.push_str("],\"rows\":[");
        for (i, row) in self.rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('[');
            for (j, cell) in row.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                match cell {
                    Cell::U64(n) => out.push_str(&n.to_string()),
                    Cell::F64(x) => out.push_str(&x.to_string()),
                    Cell::Text(s) => json_string(&mut out, s),
                }
            }
            out.push(']');
        }
        out.push_str("]}");
        out
    }
}

fn csv_escape(s: &str) -> String {
    if s.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

pub(crate) fn json_string(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Host-perf comparison of a serial and a parallel execution of the
/// same sweep, produced by [`measure_speedup`]. Both sides are
/// [`PerfSnapshot`]s carrying a `fleet.points` counter, so wall-clock
/// *and* points/sec come from the perf layer's single
/// [`rate`](PerfSnapshot::rate) code path.
#[derive(Debug, Clone)]
pub struct SpeedupReport {
    /// Host perf of the one-worker run.
    pub serial: PerfSnapshot,
    /// Host perf of the `threads`-worker run.
    pub parallel: PerfSnapshot,
    /// Worker count of the parallel run.
    pub threads: usize,
}

impl SpeedupReport {
    /// `serial / parallel` — ≥ 2× expected on ≥ 4 cores for
    /// simulation-bound sweeps; ≈ 1× on a single-core host.
    pub fn speedup(&self) -> f64 {
        self.serial.wall.as_secs_f64() / self.parallel.wall.as_secs_f64().max(1e-9)
    }
}

impl fmt::Display for SpeedupReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Rates are omitted (not rendered as NaN/Inf) when a run was too
        // fast for the clock — `rate()` already polices that.
        let pps = |snap: &PerfSnapshot| match snap.rate("fleet.points") {
            Some(r) => format!("{r:.1} points/s"),
            None => "points/s n/a".to_string(),
        };
        write!(
            f,
            "serial {:.3} s ({}) vs {} threads {:.3} s ({}): {:.2}x speedup",
            self.serial.wall.as_secs_f64(),
            pps(&self.serial),
            self.threads,
            self.parallel.wall.as_secs_f64(),
            pps(&self.parallel),
            self.speedup()
        )
    }
}

/// Run `sweep` once serially and once on `threads` workers, assert the
/// serialized results are byte-identical (the determinism contract),
/// and return the parallel results plus the wall-clock comparison.
pub fn measure_speedup<P: Sync, F>(
    sweep: &Sweep<P>,
    threads: usize,
    f: F,
) -> Result<(SweepResults, SpeedupReport), FleetError>
where
    F: Fn(&Coords, &P) -> Vec<Cell> + Sync,
{
    measure_speedup_observed(sweep, threads, f, &())
}

/// [`measure_speedup`] with a progress [`SweepObserver`], which sees
/// both executions (`2 × len` callbacks total — serial first).
pub fn measure_speedup_observed<P: Sync, F>(
    sweep: &Sweep<P>,
    threads: usize,
    f: F,
    observer: &(impl SweepObserver + ?Sized),
) -> Result<(SweepResults, SpeedupReport), FleetError>
where
    F: Fn(&Coords, &P) -> Vec<Cell> + Sync,
{
    let serial = sweep.run_observed(1, &f, observer)?;
    let parallel = sweep.run_observed(threads, &f, observer)?;
    assert_eq!(
        serial.to_csv(),
        parallel.to_csv(),
        "sweep `{}`: parallel execution changed the output bytes",
        sweep.name()
    );
    assert_eq!(
        serial.to_json(),
        parallel.to_json(),
        "sweep `{}`: parallel execution changed the JSON bytes",
        sweep.name()
    );
    let report = SpeedupReport {
        serial: serial.perf(),
        parallel: parallel.perf(),
        threads: parallel.threads(),
    };
    Ok((parallel, report))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn squares(n: u64) -> Sweep<u64> {
        let mut s = Sweep::new("squares", &["square", "half"]);
        for i in 0..n {
            s.push(Coords::new().with("i", i), i);
        }
        s
    }

    fn eval(_: &Coords, &i: &u64) -> Vec<Cell> {
        vec![Cell::U64(i * i), Cell::F64(i as f64 / 2.0)]
    }

    #[test]
    fn serial_and_parallel_bytes_match() {
        let sweep = squares(23);
        let a = sweep.run(1, eval).unwrap();
        for threads in [2, 3, 8, 64] {
            let b = sweep.run(threads, eval).unwrap();
            assert_eq!(a.to_csv(), b.to_csv(), "{threads} threads");
            assert_eq!(a.to_json(), b.to_json(), "{threads} threads");
        }
        assert!(a.to_csv().starts_with("i,square,half\n0,0,0\n1,1,0.5\n"));
    }

    #[test]
    fn empty_sweep_serializes_header_only() {
        let sweep = squares(0);
        let r = sweep.run(4, eval).unwrap();
        assert_eq!(r.to_csv(), "square,half\n"); // no points ⇒ no axes
        assert_eq!(
            r.to_json(),
            "{\"sweep\":\"squares\",\"columns\":[\"square\",\"half\"],\"rows\":[]}"
        );
    }

    #[test]
    fn panicking_point_reports_its_coordinates() {
        let mut sweep = Sweep::new("lossy", &["v"]);
        for nodes in [4u64, 8] {
            for seed in 0..3u64 {
                sweep.push(
                    Coords::new().with("nodes", nodes).with("seed", seed),
                    (nodes, seed),
                );
            }
        }
        let err = sweep
            .run(2, |_, &(nodes, seed)| {
                assert!(!(nodes == 8 && seed == 1), "channel diverged");
                vec![Cell::U64(nodes + seed)]
            })
            .unwrap_err();
        assert_eq!(err.failures.len(), 1);
        let failure = &err.failures[0];
        assert_eq!(failure.coords.get("nodes"), Some("8"));
        assert_eq!(failure.coords.get("seed"), Some("1"));
        assert_eq!(failure.index, 4);
        let rendered = err.to_string();
        assert!(rendered.contains("nodes=8 seed=1"), "{rendered}");
        assert!(rendered.contains("channel diverged"), "{rendered}");
    }

    #[test]
    fn csv_and_json_escape_hostile_text() {
        let mut sweep = Sweep::new("esc", &["note"]);
        sweep.push(Coords::new().with("k", "a,b"), ());
        let r = sweep
            .run(1, |_, _| vec![Cell::Text("say \"hi\"\nline2".into())])
            .unwrap();
        assert_eq!(r.to_csv(), "k,note\n\"a,b\",\"say \"\"hi\"\"\nline2\"\n");
        assert!(r.to_json().contains("say \\\"hi\\\"\\nline2"));
    }

    #[test]
    fn fleet_threads_is_at_least_one() {
        assert!(fleet_threads() >= 1);
    }

    #[test]
    fn observer_sees_every_point_without_changing_bytes() {
        struct Counting(Mutex<Vec<usize>>);
        impl SweepObserver for Counting {
            fn point_done(&self, index: usize, _coords: &Coords) {
                self.0.lock().unwrap().push(index);
            }
        }
        let sweep = squares(17);
        let plain = sweep.run(3, eval).unwrap();
        let obs = Counting(Mutex::new(Vec::new()));
        let observed = sweep.run_observed(3, eval, &obs).unwrap();
        assert_eq!(plain.to_csv(), observed.to_csv());
        assert_eq!(plain.to_json(), observed.to_json());
        let mut seen = obs.0.into_inner().unwrap();
        seen.sort_unstable();
        assert_eq!(seen, (0..17).collect::<Vec<_>>(), "each point exactly once");
    }

    #[test]
    fn perf_routes_points_per_sec_through_one_code_path() {
        let sweep = squares(9);
        let r = sweep.run(2, eval).unwrap();
        let perf = r.perf();
        assert_eq!(perf.counter("fleet.points"), Some(9));
        if let Some(rate) = perf.rate("fleet.points") {
            assert!(rate.is_finite());
        }
        let (_, speedup) = measure_speedup(&sweep, 2, eval).unwrap();
        assert_eq!(speedup.serial.counter("fleet.points"), Some(9));
        assert_eq!(speedup.parallel.counter("fleet.points"), Some(9));
        assert!(speedup.speedup() > 0.0);
        let shown = speedup.to_string();
        assert!(shown.contains("speedup"), "{shown}");
        assert!(!shown.contains("NaN") && !shown.contains("inf"), "{shown}");
    }

    #[test]
    #[should_panic(expected = "disagrees with the grid axes")]
    fn mismatched_axes_are_rejected() {
        let mut sweep = Sweep::new("bad", &["v"]);
        sweep.push(Coords::new().with("a", 1), ());
        sweep.push(Coords::new().with("b", 2), ());
        let _ = sweep.run(1, |_, _| vec![Cell::U64(0)]);
    }

    #[test]
    #[should_panic(expected = "is not finite")]
    fn non_finite_metrics_are_rejected() {
        let mut sweep = Sweep::new("nan", &["v"]);
        sweep.push(Coords::new().with("a", 1), ());
        let _ = sweep.run(1, |_, _| vec![Cell::F64(f64::NAN)]);
    }
}
