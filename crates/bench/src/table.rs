//! Plain-text table rendering for the regeneration binaries.

/// A fixed-column table writer producing aligned monospace output.
#[derive(Debug, Clone)]
pub struct TableWriter {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TableWriter {
    /// A table with the given column headers.
    pub fn new(headers: &[&str]) -> TableWriter {
        TableWriter {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header count).
    ///
    /// # Panics
    ///
    /// Panics on a column-count mismatch.
    pub fn row(&mut self, cells: &[String]) -> &mut TableWriter {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Append a row of string slices.
    ///
    /// # Panics
    ///
    /// Panics on a column-count mismatch.
    pub fn row_str(&mut self, cells: &[&str]) -> &mut TableWriter {
        self.row(&cells.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    /// Render the table.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::from("| ");
            for i in 0..cols {
                line.push_str(&format!("{:<w$}", cells[i], w = widths[i]));
                line.push_str(" | ");
            }
            line.trim_end().to_string() + "\n"
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        let mut sep = String::from("|");
        for w in &widths {
            sep.push_str(&"-".repeat(w + 2));
            sep.push('|');
        }
        sep.push('\n');
        out.push_str(&sep);
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }

    /// Render and print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = TableWriter::new(&["name", "value"]);
        t.row_str(&["short", "1"]);
        t.row_str(&["a-much-longer-name", "23456"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[0].len(), lines[2].len());
        assert_eq!(lines[2].len(), lines[3].len());
        assert!(lines[1].starts_with("|-"));
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn rejects_wrong_arity() {
        let mut t = TableWriter::new(&["a", "b"]);
        t.row_str(&["only-one"]);
    }
}
