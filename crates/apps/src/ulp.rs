//! The test applications as event-processor ISR chains (plus the stage-4
//! AVR handler) for the paper's architecture.
//!
//! Each application is a set of short ISRs wired to the interrupt fabric;
//! data-dependent control flow (filtering, message classification) rides
//! on the interrupt mechanism itself, so the programs contain no branches
//! — exactly the Figure 5 style. The assembled images are tiny (the paper
//! reports a 180-byte footprint for the complete stage-4 application;
//! [`UlpProgram::code_size`] reports ours).

use ulp_core::map::{self, Component, Irq};
use ulp_core::{System, SystemConfig};
use ulp_isa::ep::{encode_program, ComponentId, Instruction as I};
use ulp_mcu8::assemble;

/// Origin of the event-processor ISRs in main memory (bank 1).
pub const EP_CODE_BASE: u16 = 0x0100;
/// Origin of the microcontroller handlers (bank 4).
pub const MCU_CODE_BASE: u16 = 0x0400;

/// Which application stage (§6.1.2), or a comparison micro-app (§6.1.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AppStage {
    /// 1: periodically collect samples and transmit packets.
    SampleSend,
    /// 2: stage 1 plus threshold filtering.
    Filtered,
    /// 3: stage 2 plus receive-and-forward.
    Forwarding,
    /// 4: stage 3 plus remote reconfiguration (irregular events).
    Reconfigurable,
    /// SNAP comparison: periodically toggle an LED.
    Blink,
    /// SNAP comparison: periodically sample the ADC into a running
    /// average (the filter block's EWMA mode).
    Sense,
}

/// Sampling cadence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SamplePeriod {
    /// Up to 65535 cycles on one timer.
    Cycles(u16),
    /// `base × count` cycles via timer chaining (GDI's 70 s = 7 M cycles
    /// needs this).
    Chained {
        /// Base timer period in cycles.
        base: u16,
        /// Number of base periods per alarm.
        count: u16,
    },
}

impl SamplePeriod {
    /// Total cycles between samples.
    pub fn cycles(&self) -> u64 {
        match *self {
            SamplePeriod::Cycles(c) => c as u64,
            SamplePeriod::Chained { base, count } => base as u64 * count as u64,
        }
    }
}

/// Configuration of the monitoring application family.
#[derive(Debug, Clone)]
pub struct MonitoringConfig {
    /// Which stage to build.
    pub stage: AppStage,
    /// Sampling cadence.
    pub period: SamplePeriod,
    /// Samples batched per packet (volcano: 21; GDI: 1).
    pub samples_per_packet: u8,
    /// Threshold for stage ≥ 2.
    pub threshold: u8,
}

impl Default for MonitoringConfig {
    fn default() -> Self {
        MonitoringConfig {
            stage: AppStage::Filtered,
            period: SamplePeriod::Cycles(1000),
            samples_per_packet: 1,
            threshold: 0,
        }
    }
}

/// A fully described program for the paper's architecture.
#[derive(Debug, Clone)]
pub struct UlpProgram {
    images: Vec<(u16, Vec<u8>)>,
    ep_vectors: Vec<(u8, u16)>,
    mcu_vectors: Vec<(u8, u16)>,
    period: Option<SamplePeriod>,
    radio_listen: bool,
    filter_mode: Option<(u8, u8)>, // (mode, threshold)
    power_on: Vec<u8>,
    auto_prepare: u8,
    stage: AppStage,
    /// `(irq, component)` pairs: the ISR on `irq` intentionally leaves
    /// `component` powered for a later ISR in the chain (declared so the
    /// static checker does not flag the hand-off as an energy leak).
    handoffs: Vec<(u8, u8)>,
}

impl UlpProgram {
    /// Total bytes of EP ISRs and microcontroller handlers (the paper's
    /// "180-byte memory footprint" metric).
    pub fn code_size(&self) -> usize {
        self.images.iter().map(|(_, b)| b.len()).sum()
    }

    /// The application stage this program implements.
    pub fn stage(&self) -> AppStage {
        self.stage
    }

    /// The event-processor ISRs of this program: `(irq, origin, bytes)`
    /// in vector-installation order.
    pub fn ep_isrs(&self) -> Vec<(u8, u16, &[u8])> {
        self.ep_vectors
            .iter()
            .filter_map(|(irq, addr)| {
                self.images
                    .iter()
                    .find(|(origin, _)| origin == addr)
                    .map(|(origin, bytes)| (*irq, *origin, bytes.as_slice()))
            })
            .collect()
    }

    /// Statically check every EP ISR with `ulp-verify`, one report per
    /// installed vector.
    ///
    /// The check contexts encode what `install` actually does: components
    /// in `power_on` and a listening radio are assumed on at entry, the
    /// sampling period is the WCET budget, and declared hand-offs (a
    /// component one ISR powers for the next in the chain) are exempt
    /// from the left-on-at-exit lint.
    pub fn check(&self) -> Vec<ulp_verify::Report> {
        use ulp_verify::{check_isr, CheckContext, PowerState};
        self.ep_isrs()
            .into_iter()
            .map(|(irq, origin, bytes)| {
                let name = map::irq_name(irq)
                    .map(|n| n.to_ascii_lowercase())
                    .unwrap_or_else(|| format!("irq{irq}"));
                let mut ctx = CheckContext::system_reset(&name)
                    .with_irq(irq)
                    .with_isr_addr(origin);
                if let Some(period) = self.period {
                    ctx = ctx.with_budget(period.cycles());
                }
                for id in &self.power_on {
                    ctx = ctx.assume(*id, PowerState::On);
                }
                if self.radio_listen {
                    ctx = ctx.assume(Component::Radio as u8, PowerState::On);
                }
                for (from_irq, component) in &self.handoffs {
                    if *from_irq == irq {
                        ctx = ctx.allow_left_on(*component);
                    }
                }
                check_isr(bytes, &ctx)
            })
            .collect()
    }

    /// Build a system with this program installed.
    pub fn build_system(
        &self,
        config: SystemConfig,
        sensor: Box<dyn ulp_core::slaves::SensorModel + Send>,
    ) -> System {
        let mut sys = System::new(config, sensor);
        self.install(&mut sys);
        sys
    }

    /// Install images, vectors, and peripheral configuration.
    ///
    /// In debug builds every EP ISR is run through the static checker
    /// first; an error-severity finding is a bug in the program builder,
    /// so it panics with the rendered report. WCET overruns are exempt:
    /// deliberately saturating the event fabric is a legitimate
    /// experiment (§4.2.4 — "events will simply be dropped"), the
    /// system degrades rather than faults.
    pub fn install(&self, sys: &mut System) {
        #[cfg(debug_assertions)]
        for report in self.check() {
            let hard_errors = report
                .diags
                .iter()
                .filter(|d| {
                    d.class.severity() == ulp_verify::Severity::Error
                        && d.class != ulp_verify::DiagClass::WcetOverrun
                })
                .count();
            assert_eq!(
                hard_errors,
                0,
                "EP ISR fails static check:\n{}",
                report.render()
            );
        }
        for (origin, bytes) in &self.images {
            sys.load(*origin, bytes);
        }
        for (irq, isr) in &self.ep_vectors {
            sys.install_ep_isr(*irq, *isr);
        }
        for (v, handler) in &self.mcu_vectors {
            sys.install_mcu_handler(*v, *handler);
        }
        if let Some((mode, threshold)) = self.filter_mode {
            let s = sys.slaves_mut();
            s.filter.write(map::FILTER_MODE, mode, || ());
            s.filter.write(map::FILTER_THRESHOLD, threshold, || ());
        }
        for id in &self.power_on {
            sys.set_component_power(*id, true);
        }
        if self.auto_prepare > 0 {
            sys.slaves_mut()
                .msgproc
                .write(map::MSG_BASE + map::MSG_AUTO_PREPARE, self.auto_prepare);
        }
        if self.radio_listen {
            sys.radio_listen();
        }
        match self.period {
            Some(SamplePeriod::Cycles(c)) => sys.slaves_mut().timer.configure_periodic(0, c),
            Some(SamplePeriod::Chained { base, count }) => {
                sys.slaves_mut().timer.configure_chained(1, base, count)
            }
            None => {}
        }
    }
}

fn cid(c: Component) -> ComponentId {
    ComponentId::new(c as u8).expect("component ids are 5-bit")
}

/// Build the monitoring application (stages 1–4 of §6.1.2).
///
/// # Panics
///
/// Panics if `samples_per_packet` is 0 or exceeds the message buffer.
pub fn monitoring(cfg: &MonitoringConfig) -> UlpProgram {
    assert!(
        (1..=ulp_core::slaves::MAX_SAMPLES as u8).contains(&cfg.samples_per_packet),
        "samples_per_packet out of range"
    );
    let sensor = cid(Component::Sensor);
    let msgproc = cid(Component::MsgProc);
    let radio = cid(Component::Radio);
    let batched = cfg.samples_per_packet > 1;
    let listens = matches!(cfg.stage, AppStage::Forwarding | AppStage::Reconfigurable);
    // Relay nodes keep the message processor powered: with a single TX
    // buffer serving both locally prepared packets and forwards, gating
    // it at the end of one chain would yank it from under the other
    // (MsgReady and MsgForward can be pending simultaneously).
    let msg_always_on = batched || listens;
    let filtered = matches!(
        cfg.stage,
        AppStage::Filtered | AppStage::Forwarding | AppStage::Reconfigurable
    );

    let mut images = Vec::new();
    let mut ep_vectors = Vec::new();
    let mut mcu_vectors = Vec::new();
    let mut origin = EP_CODE_BASE;
    let mut add_isr = |isr: &[I], irq: u8, images: &mut Vec<(u16, Vec<u8>)>| {
        let bytes = encode_program(isr).expect("EP program encodes");
        let at = origin;
        origin += bytes.len() as u16;
        images.push((at, bytes));
        ep_vectors.push((irq, at));
    };

    // Deliver a sample into the message pipeline. With batching the
    // message processor stays powered (its accumulator is doing work
    // between packets); otherwise it is woken per event, Figure 5 style.
    let deliver_sample: Vec<I> = if msg_always_on {
        vec![I::Write(map::MSG_BASE + map::MSG_SAMPLE_IN), I::Terminate]
    } else {
        vec![
            I::SwitchOn(msgproc),
            I::Write(map::MSG_BASE + map::MSG_SAMPLE_IN),
            I::WriteI {
                addr: map::MSG_BASE + map::MSG_CTRL,
                value: 1, // Prepare
            },
            I::Terminate,
        ]
    };

    // ISR: timer alarm → sample the sensor.
    let mut isr_timer = vec![
        I::SwitchOn(sensor),
        I::Read(map::SENSOR_BASE + map::SENSOR_DATA),
        I::SwitchOff(sensor),
    ];
    if filtered {
        // Hand the sample to the filter; the chain continues only if the
        // FilterPass interrupt fires (event-driven conditional).
        isr_timer.extend([
            I::Write(map::FILTER_BASE + map::FILTER_INPUT),
            I::WriteI {
                addr: map::FILTER_BASE + map::FILTER_CTRL,
                value: 1,
            },
            I::Terminate,
        ]);
    } else {
        isr_timer.extend(deliver_sample.clone());
    }
    let timer_irq = match cfg.period {
        SamplePeriod::Cycles(_) => Irq::Timer0.id(),
        SamplePeriod::Chained { .. } => Irq::Timer1.id(),
    };
    add_isr(&isr_timer, timer_irq, &mut images);

    if filtered {
        // ISR: filter pass → forward the latched sample onward.
        let mut isr_pass = vec![I::Read(map::FILTER_BASE + map::FILTER_INPUT)];
        isr_pass.extend(deliver_sample.clone());
        add_isr(&isr_pass, Irq::FilterPass.id(), &mut images);
    }

    // ISR: message ready → move the frame to the radio and transmit.
    // TRANSFER length is static (the EP has no ALU): header + batch + FCS.
    let tx_len = (ulp_net::MHR_LEN + cfg.samples_per_packet as usize + 2) as u8;
    // A listening radio is already powered (install leaves it in RX), so
    // the SWITCHON would be a redundant no-op burning fetch cycles.
    let mut isr_ready = if listens {
        Vec::new()
    } else {
        vec![I::SwitchOn(radio)]
    };
    isr_ready.extend([
        I::Read(map::MSG_BASE + map::MSG_TX_LEN),
        I::Write(map::RADIO_BASE + map::RADIO_TX_LEN),
        I::Transfer {
            src: map::MSG_TX_BUF,
            dst: map::RADIO_TX_BUF,
            len: tx_len,
        },
    ]);
    if !msg_always_on {
        isr_ready.push(I::SwitchOff(msgproc));
    }
    isr_ready.extend([
        I::WriteI {
            addr: map::RADIO_BASE + map::RADIO_CTRL,
            value: 1,
        },
        I::Terminate,
    ]);
    add_isr(&isr_ready, Irq::MsgReady.id(), &mut images);

    // ISR: transmission complete → return the radio to its resting state.
    let isr_txdone: Vec<I> = if listens {
        vec![
            I::WriteI {
                addr: map::RADIO_BASE + map::RADIO_CTRL,
                value: 2, // keep listening
            },
            I::Terminate,
        ]
    } else {
        vec![I::SwitchOff(radio), I::Terminate]
    };
    add_isr(&isr_txdone, Irq::RadioTxDone.id(), &mut images);

    if listens {
        // ISR: frame received → hand it to the message processor. Relay
        // configurations keep the message processor powered (see
        // `msg_always_on` above), so no SWITCHON is needed here.
        let isr_rx = vec![
            I::Read(map::RADIO_BASE + map::RADIO_RX_LEN),
            I::Write(map::MSG_BASE + map::MSG_RX_LEN),
            I::Transfer {
                src: map::RADIO_RX_BUF,
                dst: map::MSG_RX_BUF,
                len: 32,
            },
            I::WriteI {
                addr: map::MSG_BASE + map::MSG_CTRL,
                value: 2, // ProcessRx
            },
            I::Terminate,
        ];
        add_isr(&isr_rx, Irq::RadioRxDone.id(), &mut images);

        // ISR: forward → send the verbatim frame out.
        let mut isr_fwd = vec![
            I::Read(map::MSG_BASE + map::MSG_TX_LEN),
            I::Write(map::RADIO_BASE + map::RADIO_TX_LEN),
            I::Transfer {
                src: map::MSG_TX_BUF,
                dst: map::RADIO_TX_BUF,
                len: 32,
            },
        ];
        if !msg_always_on {
            isr_fwd.push(I::SwitchOff(msgproc));
        }
        isr_fwd.extend([
            I::WriteI {
                addr: map::RADIO_BASE + map::RADIO_CTRL,
                value: 1,
            },
            I::Terminate,
        ]);
        add_isr(&isr_fwd, Irq::MsgForward.id(), &mut images);
    }

    if cfg.stage == AppStage::Reconfigurable {
        // ISR: irregular message → wake the microcontroller at vector 0.
        // The message processor stays powered so the handler can read the
        // payload; the handler gates it off before sleeping.
        add_isr(&[I::Wakeup(0)], Irq::MsgIrregular.id(), &mut images);

        let handler = reconfig_handler_source();
        let img = assemble(&handler).expect("reconfig handler assembles");
        for seg in img.segments() {
            images.push((MCU_CODE_BASE + seg.origin as u16, seg.data.clone()));
        }
        mcu_vectors.push((0, MCU_CODE_BASE));
    }

    UlpProgram {
        images,
        ep_vectors,
        mcu_vectors,
        period: Some(cfg.period),
        radio_listen: listens,
        filter_mode: filtered.then_some((0, cfg.threshold)),
        power_on: if msg_always_on {
            vec![Component::MsgProc as u8]
        } else {
            Vec::new()
        },
        auto_prepare: if msg_always_on {
            cfg.samples_per_packet
        } else {
            0
        },
        stage: cfg.stage,
        handoffs: {
            let mut handoffs = Vec::new();
            if !msg_always_on {
                // The sample-delivery ISR powers the message processor
                // and hands it to the MsgReady ISR (which gates it off).
                let deliverer = if filtered {
                    Irq::FilterPass.id()
                } else {
                    timer_irq
                };
                handoffs.push((deliverer, Component::MsgProc as u8));
            }
            if !listens {
                // MsgReady powers the radio for the transmission; the
                // RadioTxDone ISR gates it off afterwards.
                handoffs.push((Irq::MsgReady.id(), Component::Radio as u8));
            }
            handoffs
        },
    }
}

/// The stage-4 irregular-event handler: parse the reconfiguration payload
/// and apply it (sampling period or filter threshold), then gate the
/// microcontroller itself (the message processor stays on in relay
/// configurations; see `monitoring`).
///
/// Payload layout: `[param, value_lo, value_hi]` with param 1 = sampling
/// period (timer 0 reload), param 2 = filter threshold.
fn reconfig_handler_source() -> String {
    format!(
        r#"
.equ PAYLOAD, {payload}       ; MSG_RX_BUF + MAC header
.equ TIMER0, {timer0}
.equ FILTER_THRESHOLD, {fthr}
.equ SYS_MCU_SLEEP, {ssleep}

handler:
    lds r16, PAYLOAD          ; param id
    cpi r16, 1
    breq do_timer
    cpi r16, 2
    breq do_thresh
    rjmp done
do_timer:
    ; Disable, reprogram, re-enable (re-enabling reloads the counter).
    ldi r16, 0
    sts TIMER0 + 2, r16
    lds r16, PAYLOAD + 1
    sts TIMER0 + 0, r16       ; reload lo
    lds r16, PAYLOAD + 2
    sts TIMER0 + 1, r16       ; reload hi
    ldi r16, 0x0B             ; enable | repeat | irq
    sts TIMER0 + 2, r16
    rjmp done
do_thresh:
    lds r16, PAYLOAD + 1
    sts FILTER_THRESHOLD, r16
done:
    ldi r16, 1
    sts SYS_MCU_SLEEP, r16
hang:
    rjmp hang                 ; gated before this spins more than once
"#,
        payload = map::MSG_RX_BUF + ulp_net::MHR_LEN as u16,
        timer0 = map::TIMER_BASE,
        fthr = map::FILTER_BASE + map::FILTER_THRESHOLD,
        ssleep = map::SYS_BASE + map::SYS_MCU_SLEEP,
    )
}

/// The `blink` comparison app: a timer toggles the LED, entirely in the
/// event processor (the paper reports 12 cycles; SNAP 41; Mica2 523).
pub fn blink(period: u16) -> UlpProgram {
    let isr = encode_program(&[
        I::WriteI {
            addr: map::SYS_BASE + map::SYS_GPIO_TOGGLE,
            value: 1,
        },
        I::Terminate,
    ]).unwrap();
    UlpProgram {
        images: vec![(EP_CODE_BASE, isr)],
        ep_vectors: vec![(Irq::Timer0.id(), EP_CODE_BASE)],
        mcu_vectors: Vec::new(),
        period: Some(SamplePeriod::Cycles(period)),
        radio_listen: false,
        filter_mode: None,
        power_on: Vec::new(),
        auto_prepare: 0,
        stage: AppStage::Blink,
        handoffs: Vec::new(),
    }
}

/// The `sense` comparison app: periodic ADC sampling into the filter's
/// hardware running average (the paper reports 24 cycles; SNAP 261;
/// Mica2 1118).
pub fn sense(period: u16) -> UlpProgram {
    let sensor = cid(Component::Sensor);
    let isr = encode_program(&[
        I::SwitchOn(sensor),
        I::Read(map::SENSOR_BASE + map::SENSOR_DATA),
        I::SwitchOff(sensor),
        I::Write(map::FILTER_BASE + map::FILTER_INPUT),
        I::WriteI {
            addr: map::FILTER_BASE + map::FILTER_CTRL,
            value: 1,
        },
        I::Terminate,
    ]).unwrap();
    UlpProgram {
        images: vec![(EP_CODE_BASE, isr)],
        ep_vectors: vec![(Irq::Timer0.id(), EP_CODE_BASE)],
        mcu_vectors: Vec::new(),
        period: Some(SamplePeriod::Cycles(period)),
        radio_listen: false,
        filter_mode: Some((2, 0)), // EWMA mode
        power_on: Vec::new(),
        auto_prepare: 0,
        stage: AppStage::Sense,
        handoffs: Vec::new(),
    }
}

/// Convenience constructors for the four staged applications.
pub mod stages {
    use super::*;

    /// Application 1: sample and send.
    pub fn app1(period: SamplePeriod) -> UlpProgram {
        monitoring(&MonitoringConfig {
            stage: AppStage::SampleSend,
            period,
            ..MonitoringConfig::default()
        })
    }

    /// Application 2: sample, filter, send.
    pub fn app2(period: SamplePeriod, threshold: u8) -> UlpProgram {
        monitoring(&MonitoringConfig {
            stage: AppStage::Filtered,
            period,
            threshold,
            ..MonitoringConfig::default()
        })
    }

    /// Application 3: application 2 plus forwarding.
    pub fn app3(period: SamplePeriod, threshold: u8) -> UlpProgram {
        monitoring(&MonitoringConfig {
            stage: AppStage::Forwarding,
            period,
            threshold,
            ..MonitoringConfig::default()
        })
    }

    /// Application 4: application 3 plus remote reconfiguration.
    pub fn app4(period: SamplePeriod, threshold: u8) -> UlpProgram {
        monitoring(&MonitoringConfig {
            stage: AppStage::Reconfigurable,
            period,
            threshold,
            ..MonitoringConfig::default()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ulp_core::slaves::ConstSensor;
    use ulp_net::Frame;
    use ulp_sim::{Cycles, Engine, Simulatable};

    fn run(prog: &UlpProgram, cycles: u64) -> System {
        let sys = prog.build_system(SystemConfig::default(), Box::new(ConstSensor(99)));
        let mut engine = Engine::new(sys);
        engine.run_for(Cycles(cycles));
        let sys = engine.into_machine();
        assert!(sys.fault().is_none(), "fault: {:?}", sys.fault());
        sys
    }

    #[test]
    fn app1_sends_packets() {
        let prog = stages::app1(SamplePeriod::Cycles(2000));
        let mut sys = run(&prog, 10_000);
        let out = sys.take_outbox();
        assert_eq!(out.len(), 4);
        let f = Frame::decode(&out[0].1).unwrap();
        assert_eq!(f.payload, vec![99]);
    }

    #[test]
    fn app2_filter_blocks_low_samples() {
        let mut cfg = MonitoringConfig {
            stage: AppStage::Filtered,
            period: SamplePeriod::Cycles(2000),
            threshold: 100,
            samples_per_packet: 1,
        };
        // Sensor reads 99 < threshold 100: nothing is sent.
        let prog = monitoring(&cfg);
        let mut sys = run(&prog, 10_000);
        assert!(sys.take_outbox().is_empty(), "filtered out");
        assert_eq!(sys.slaves().filter.evaluations(), 4);
        // Lower the threshold: everything passes.
        cfg.threshold = 50;
        let prog = monitoring(&cfg);
        let mut sys = run(&prog, 10_000);
        assert_eq!(sys.take_outbox().len(), 4);
    }

    #[test]
    fn app3_forwards_neighbour_traffic() {
        let prog = stages::app3(SamplePeriod::Cycles(50_000), 0);
        let sys = prog.build_system(SystemConfig::default(), Box::new(ConstSensor(1)));
        let mut engine = Engine::new(sys);
        let neighbour = Frame::data(0x22, 0x0009, 0x0000, 5, &[42]).unwrap();
        engine
            .machine_mut()
            .schedule_rx(Cycles(1_000), neighbour.encode());
        engine
            .machine_mut()
            .schedule_rx(Cycles(5_000), neighbour.encode()); // duplicate
        engine.run_for(Cycles(20_000));
        let sys = engine.machine_mut();
        assert!(sys.fault().is_none(), "fault: {:?}", sys.fault());
        assert_eq!(sys.slaves().msgproc.stats().forwarded, 1);
        assert_eq!(sys.slaves().msgproc.stats().duplicates, 1);
        let out = sys.take_outbox();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].1, neighbour.encode());
    }

    #[test]
    fn app4_reconfigures_sampling_period() {
        let prog = stages::app4(SamplePeriod::Cycles(10_000), 0);
        let sys = prog.build_system(SystemConfig::default(), Box::new(ConstSensor(1)));
        let mut engine = Engine::new(sys);
        // Command: set sampling period to 0x0320 = 800 cycles.
        let cmd = Frame::command(0x22, 0x0009, 0x0001, 1, &[1, 0x20, 0x03]).unwrap();
        engine.machine_mut().schedule_rx(Cycles(500), cmd.encode());
        engine.run_for(Cycles(3_000));
        {
            let sys = engine.machine();
            assert!(sys.fault().is_none(), "fault: {:?}", sys.fault());
            assert_eq!(sys.mcu().stats().wakeups, 1, "irregular event woke µC");
            assert!(!sys.mcu().powered(), "handler slept again");
            let next = sys.slaves().timer.cycles_to_next_alarm().unwrap();
            assert!(
                next <= 0x0320,
                "period reprogrammed to 800 cycles; next alarm in {next}"
            );
            assert!(
                sys.slaves().msgproc.powered(),
                "relay keeps msgproc powered (shared TX buffer)"
            );
        }
        // The new cadence takes effect.
        engine.run_for(Cycles(3_300));
        let sys = engine.machine_mut();
        assert!(
            sys.slaves().radio.stats().transmitted >= 3,
            "fast cadence after reconfig: {:?}",
            sys.slaves().radio.stats()
        );
        let _ = sys.take_outbox();
    }

    #[test]
    fn app4_reconfigures_threshold() {
        let prog = stages::app4(SamplePeriod::Cycles(10_000), 10);
        let sys = prog.build_system(SystemConfig::default(), Box::new(ConstSensor(99)));
        let mut engine = Engine::new(sys);
        let cmd = Frame::command(0x22, 0x0009, 0x0001, 1, &[2, 200, 0]).unwrap();
        engine.machine_mut().schedule_rx(Cycles(500), cmd.encode());
        engine.run_for(Cycles(2_000));
        let sys = engine.machine();
        assert!(sys.fault().is_none(), "fault: {:?}", sys.fault());
        assert_eq!(
            sys.slaves().filter.read(map::FILTER_THRESHOLD),
            200,
            "threshold updated"
        );
    }

    #[test]
    fn batching_builds_multi_sample_packets() {
        let prog = monitoring(&MonitoringConfig {
            stage: AppStage::SampleSend,
            period: SamplePeriod::Cycles(1000),
            samples_per_packet: 5,
            threshold: 0,
        });
        let mut sys = run(&prog, 12_000);
        let out = sys.take_outbox();
        assert_eq!(out.len(), 2, "10 samples → 2 packets of 5");
        let f = Frame::decode(&out[0].1).unwrap();
        assert_eq!(f.payload, vec![99; 5]);
    }

    #[test]
    fn chained_period_for_long_intervals() {
        // 70 s at 100 kHz = 7 M cycles = 10 000 × 700.
        let prog = stages::app1(SamplePeriod::Chained {
            base: 10_000,
            count: 700,
        });
        assert_eq!(
            SamplePeriod::Chained {
                base: 10_000,
                count: 700
            }
            .cycles(),
            7_000_000
        );
        let mut sys = run(&prog, 15_000_000);
        assert_eq!(sys.take_outbox().len(), 2, "two 70 s periods");
    }

    #[test]
    fn blink_toggles_led_in_few_cycles() {
        let prog = blink(500);
        let sys = run(&prog, 2_600);
        // 5 alarms: LED toggled 5 times → ends at 1.
        assert_eq!(sys.slaves().sys.gpio & 1, 1);
        assert_eq!(sys.ep().stats().events, 5);
        // Cycle cost per event: the paper reports 12 for their system.
        let busy = sys.busy_cycles().0;
        let per_event = busy as f64 / 5.0;
        assert!(
            (6.0..=16.0).contains(&per_event),
            "blink costs {per_event} cycles/event; paper says 12"
        );
    }

    #[test]
    fn sense_accumulates_running_average() {
        let prog = sense(500);
        let sys = run(&prog, 20_000);
        assert!(
            sys.slaves().filter.average() > 80,
            "EWMA converged towards 99"
        );
        let per_event = sys.busy_cycles().0 as f64 / sys.ep().stats().events as f64;
        assert!(
            (15.0..=35.0).contains(&per_event),
            "sense costs {per_event} cycles/event; paper says 24"
        );
    }

    #[test]
    fn every_shipped_isr_checks_clean() {
        let programs: Vec<(&str, UlpProgram)> = vec![
            ("app1", stages::app1(SamplePeriod::Cycles(2000))),
            ("app2", stages::app2(SamplePeriod::Cycles(2000), 50)),
            ("app3", stages::app3(SamplePeriod::Cycles(50_000), 0)),
            ("app4", stages::app4(SamplePeriod::Cycles(10_000), 10)),
            (
                "app1-batched",
                monitoring(&MonitoringConfig {
                    stage: AppStage::SampleSend,
                    period: SamplePeriod::Cycles(1000),
                    samples_per_packet: 5,
                    threshold: 0,
                }),
            ),
            (
                "app1-chained",
                stages::app1(SamplePeriod::Chained {
                    base: 10_000,
                    count: 700,
                }),
            ),
            ("blink", blink(500)),
            ("sense", sense(500)),
        ];
        for (label, prog) in &programs {
            for report in prog.check() {
                assert!(
                    report.is_clean(),
                    "{label}/{}: not clean\n{}",
                    report.name,
                    report.render()
                );
            }
        }
    }

    #[test]
    fn code_sizes_are_tiny() {
        let app4 = stages::app4(SamplePeriod::Cycles(1000), 10);
        let size = app4.code_size();
        assert!(
            size < 400,
            "stage-4 footprint {size} B; paper reports 180 B vs 11558 B on Mica2"
        );
        assert!(blink(100).code_size() < 20);
    }

    #[test]
    fn idle_skip_equivalence_for_app4() {
        let prog = stages::app4(SamplePeriod::Cycles(5_000), 0);
        let run_mode = |ff: bool| {
            let sys = prog.build_system(SystemConfig::default(), Box::new(ConstSensor(50)));
            let mut engine = Engine::new(sys);
            engine.set_fast_forward(ff);
            let cmd = Frame::command(0x22, 9, 1, 1, &[1, 0x10, 0x27]).unwrap();
            engine
                .machine_mut()
                .schedule_rx(Cycles(12_000), cmd.encode());
            engine.run_for(Cycles(100_000));
            let sys = engine.into_machine();
            (
                sys.busy_cycles(),
                sys.meter().total_energy().joules(),
                sys.slaves().radio.stats().transmitted,
                sys.now(),
            )
        };
        let a = run_mode(true);
        let b = run_mode(false);
        assert_eq!(a.0, b.0, "busy cycles");
        assert!((a.1 - b.1).abs() < 1e-15, "energy {:?} vs {:?}", a.1, b.1);
        assert_eq!(a.2, b.2, "transmissions");
        assert_eq!(a.3, b.3, "clock");
    }
}
