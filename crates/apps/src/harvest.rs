//! Energy-harvesting supplies and storage (paper §2).
//!
//! The 100 µW power target exists so the node can run "indefinitely off
//! of energy scavenged from the environment": vibration harvesters
//! deliver on the order of 100 µW for mote-sized devices (Roundy et
//! al.), and the PicoRadio beacon demonstrated solar+vibration supplies.
//! These models close the loop: given a simulated node's average power,
//! is the deployment untethered-sustainable?

use ulp_sim::{Energy, Power, Seconds, Voltage};

/// A time-varying environmental energy source.
pub trait EnergySource {
    /// Instantaneous harvested power at time `t` since deployment.
    fn power_at(&self, t: Seconds) -> Power;
}

/// A solar panel: half-sine output during daytime, nothing at night.
#[derive(Debug, Clone, Copy)]
pub struct SolarPanel {
    /// Peak output at solar noon.
    pub peak: Power,
    /// Full day period (86 400 s for Earth deployments).
    pub day: Seconds,
}

impl EnergySource for SolarPanel {
    fn power_at(&self, t: Seconds) -> Power {
        let phase = (t.0 / self.day.0).fract();
        if phase < 0.5 {
            // Daytime: half-sine from dawn (0) to dusk (0.5).
            let x = phase * 2.0 * std::f64::consts::PI;
            self.peak * x.sin().max(0.0)
        } else {
            Power::ZERO
        }
    }
}

/// A vibration harvester: roughly constant output while the structure
/// vibrates (the ~100 µW figure the paper's target is based on).
#[derive(Debug, Clone, Copy)]
pub struct VibrationHarvester {
    /// Average harvested power.
    pub average: Power,
}

impl EnergySource for VibrationHarvester {
    fn power_at(&self, _t: Seconds) -> Power {
        self.average
    }
}

/// Sum of two sources (solar by day, vibration round the clock).
#[derive(Debug, Clone, Copy)]
pub struct Combined<A, B> {
    /// First source.
    pub a: A,
    /// Second source.
    pub b: B,
}

impl<A: EnergySource, B: EnergySource> EnergySource for Combined<A, B> {
    fn power_at(&self, t: Seconds) -> Power {
        self.a.power_at(t) + self.b.power_at(t)
    }
}

/// An energy buffer (supercapacitor or small secondary cell).
#[derive(Debug, Clone, Copy)]
pub struct Storage {
    /// Usable capacity.
    pub capacity: Energy,
    /// Current stored energy.
    pub level: Energy,
}

impl Storage {
    /// A full store of the given capacity.
    pub fn full(capacity: Energy) -> Storage {
        Storage {
            capacity,
            level: capacity,
        }
    }

    /// Add harvested energy (clamped at capacity).
    pub fn deposit(&mut self, e: Energy) {
        self.level = Energy::from_joules((self.level + e).joules().min(self.capacity.joules()));
    }

    /// Draw energy; returns `false` (and empties the store) if there was
    /// not enough.
    pub fn withdraw(&mut self, e: Energy) -> bool {
        if self.level.joules() >= e.joules() {
            self.level = self.level - e;
            true
        } else {
            self.level = Energy::ZERO;
            false
        }
    }

    /// Stored fraction (0–1).
    pub fn fraction(&self) -> f64 {
        if self.capacity.joules() <= 0.0 {
            0.0
        } else {
            self.level.joules() / self.capacity.joules()
        }
    }
}

/// Result of an untethered-operation simulation.
#[derive(Debug, Clone, Copy)]
pub struct HarvestReport {
    /// Fraction of the simulated span the node could run.
    pub uptime: f64,
    /// Lowest storage level observed.
    pub min_level: Energy,
    /// Storage level at the end.
    pub final_level: Energy,
    /// Total energy harvested.
    pub harvested: Energy,
    /// Total energy consumed by the load while up.
    pub consumed: Energy,
}

/// Simulate a node drawing `load` continuously from `storage`, refilled
/// by `source`, over `duration` in steps of `step`. The node browns out
/// while the store is empty and restarts as soon as one step's load can
/// be covered again.
///
/// # Panics
///
/// Panics if `step` or `duration` is non-positive.
pub fn simulate_untethered(
    source: &dyn EnergySource,
    mut storage: Storage,
    load: Power,
    step: Seconds,
    duration: Seconds,
) -> HarvestReport {
    assert!(step.0 > 0.0 && duration.0 > 0.0, "positive times required");
    let steps = (duration.0 / step.0).ceil() as u64;
    let mut up_steps = 0u64;
    let mut min_level = storage.level;
    let mut harvested = Energy::ZERO;
    let mut consumed = Energy::ZERO;
    for i in 0..steps {
        let t = Seconds(i as f64 * step.0);
        let income = source.power_at(t) * step;
        harvested += income;
        storage.deposit(income);
        let need = load * step;
        if storage.withdraw(need) {
            up_steps += 1;
            consumed += need;
        }
        if storage.level < min_level {
            min_level = storage.level;
        }
    }
    HarvestReport {
        uptime: up_steps as f64 / steps as f64,
        min_level,
        final_level: storage.level,
        harvested,
        consumed,
    }
}

/// Lifetime of a primary battery at a constant average load — the paper's
/// motivation numbers (two AA cells ≈ 2850 mAh at 3 V).
///
/// # Panics
///
/// Panics if `avg_power` is zero.
pub fn battery_lifetime(capacity_mah: f64, supply: Voltage, avg_power: Power) -> Seconds {
    assert!(avg_power.watts() > 0.0, "load must be positive");
    let capacity_j = capacity_mah * 1e-3 * 3600.0 * supply.volts();
    Seconds(capacity_j / avg_power.watts())
}

#[cfg(test)]
mod tests {
    use super::*;

    const DAY: f64 = 86_400.0;

    #[test]
    fn solar_peaks_at_noon_and_sleeps_at_night() {
        let p = SolarPanel {
            peak: Power::from_uw(500.0),
            day: Seconds(DAY),
        };
        let noon = p.power_at(Seconds(DAY * 0.25));
        assert!((noon.uw() - 500.0).abs() < 1.0);
        assert_eq!(p.power_at(Seconds(DAY * 0.75)), Power::ZERO);
        // Periodic across days.
        let tomorrow = p.power_at(Seconds(DAY * 1.25));
        assert!((tomorrow.uw() - 500.0).abs() < 1.0);
    }

    #[test]
    fn vibration_is_constant() {
        let v = VibrationHarvester {
            average: Power::from_uw(100.0),
        };
        assert_eq!(v.power_at(Seconds(0.0)), v.power_at(Seconds(1e6)));
    }

    #[test]
    fn storage_clamps_and_empties() {
        let mut s = Storage::full(Energy::from_joules(10.0));
        s.deposit(Energy::from_joules(5.0));
        assert_eq!(s.level.joules(), 10.0, "clamped at capacity");
        assert!(s.withdraw(Energy::from_joules(4.0)));
        assert!((s.fraction() - 0.6).abs() < 1e-12);
        assert!(!s.withdraw(Energy::from_joules(100.0)));
        assert_eq!(s.level, Energy::ZERO);
    }

    #[test]
    fn vibration_sustains_sub_100uw_load() {
        // The paper's thesis: a ~2 µW node runs indefinitely off a
        // 100 µW harvester.
        let src = VibrationHarvester {
            average: Power::from_uw(100.0),
        };
        let report = simulate_untethered(
            &src,
            Storage::full(Energy::from_joules(1.0)),
            Power::from_uw(2.0),
            Seconds(60.0),
            Seconds(DAY * 7.0),
        );
        assert_eq!(report.uptime, 1.0);
        assert!(
            report.final_level.joules() > 0.999,
            "store effectively full: {}",
            report.final_level.joules()
        );
    }

    #[test]
    fn mica2_load_browns_out_on_the_same_harvester() {
        // A Mica2-class load (≈ 10 mW with idle sleep) cannot live on
        // 100 µW.
        let src = VibrationHarvester {
            average: Power::from_uw(100.0),
        };
        let report = simulate_untethered(
            &src,
            Storage::full(Energy::from_joules(1.0)),
            Power::from_mw(10.0),
            Seconds(60.0),
            Seconds(DAY),
        );
        assert!(report.uptime < 0.05, "uptime {}", report.uptime);
    }

    #[test]
    fn solar_day_night_cycle_needs_storage() {
        let src = SolarPanel {
            peak: Power::from_uw(300.0),
            day: Seconds(DAY),
        };
        // Average solar income: peak × (1/π) ≈ 95 µW; a 50 µW load is
        // sustainable with a store that rides through the night.
        let big_store = Storage::full(Energy::from_joules(5.0));
        let report = simulate_untethered(
            &src,
            big_store,
            Power::from_uw(50.0),
            Seconds(600.0),
            Seconds(DAY * 3.0),
        );
        assert!(report.uptime > 0.99, "uptime {}", report.uptime);
        // A tiny store browns out at night.
        let small = Storage::full(Energy::from_joules(0.05));
        let report = simulate_untethered(
            &src,
            small,
            Power::from_uw(50.0),
            Seconds(600.0),
            Seconds(DAY * 3.0),
        );
        assert!(report.uptime < 0.9, "uptime {}", report.uptime);
    }

    #[test]
    fn battery_lifetime_scales() {
        // Two AA (2850 mAh, 3 V) at 24 mW (Mica2 active): ~1.5 weeks.
        let mica = battery_lifetime(2850.0, Voltage::from_volts(3.0), Power::from_mw(24.0));
        assert!((mica.0 / 86_400.0) < 16.0);
        // The same cells at 2 µW: centuries (self-discharge aside).
        let ulp = battery_lifetime(2850.0, Voltage::from_volts(3.0), Power::from_uw(2.0));
        assert!(ulp.0 / (86_400.0 * 365.0) > 100.0);
    }
}
