//! Workload analysis: the Figure 6 duty-cycle power sweep.
//!
//! The paper correlates per-component power (Table 5) with per-component
//! *utilization measured in the simulator* for the sample-filter-transmit
//! application, assuming every sample passes the filter (the conservative
//! case), then sweeps the node duty cycle from 1 (≈800 samples/s at
//! 100 kHz) down to 10⁻⁴ (the Great Duck Island operating point). That
//! is an analytic correlation — the paper does not simulate 800
//! back-to-back events per second — so we reproduce it the same way:
//!
//! 1. [`profile_event`] simulates real events and extracts per-event
//!    active cycles for every component (the paper's "the threshold
//!    filter is used for 3 cycles out of the total system 127 cycles per
//!    sample, and the message processor for 70");
//! 2. [`figure6_sweep`] scales those utilizations across the duty grid
//!    against the Table 5 active/idle powers, with the timer's
//!    one-of-four-always-on floor;
//! 3. [`simulate_duty`] cross-validates individual points with a full
//!    simulation at duty cycles the real system can sustain.

use crate::ulp::{self, MonitoringConfig, SamplePeriod};
use ulp_core::slaves::ConstSensor;
use ulp_core::{System, SystemConfig, SystemPower};
use ulp_mica::io::CPU_HZ as MICA_HZ;
use ulp_mica::msp430::Msp430Model;
use ulp_mica::power::{Mica2Power, SleepMode};
use ulp_sim::{Cycles, Energy, Engine, Power, Simulatable};

/// Per-event activity profile of the sample-filter-transmit application,
/// measured in simulation.
#[derive(Debug, Clone, Copy)]
pub struct EventProfile {
    /// Busy cycles per event (the paper's 127).
    pub event_cycles: u64,
    /// Event-processor active cycles per event.
    pub ep_active: f64,
    /// Filter active cycles per event (the paper's 3).
    pub filter_active: f64,
    /// Message-processor active cycles per event (the paper's 70; ours
    /// is smaller because the EP transfers only the 12-byte single-sample
    /// frame instead of the full 32-byte buffer).
    pub msg_active: f64,
    /// Timer-block register-access cycles per event.
    pub timer_active: f64,
    /// Memory energy per event beyond idle leakage.
    pub mem_energy: Energy,
}

/// Build the measurement instance of the stage-2 application.
fn app2_system(period: SamplePeriod) -> System {
    let prog = ulp::monitoring(&MonitoringConfig {
        stage: ulp::AppStage::Filtered,
        period,
        samples_per_packet: 1,
        threshold: 0, // every sample passes: the paper's conservative case
    });
    prog.build_system(SystemConfig::default(), Box::new(ConstSensor(128)))
}

/// Measure the per-event activity profile from a handful of real events.
pub fn profile_event() -> EventProfile {
    const EVENTS: u64 = 4;
    let sys = app2_system(SamplePeriod::Cycles(50_000));
    let mut engine = Engine::new(sys);
    let (_, ok) = engine.run_until(Cycles(500_000), |s| {
        s.slaves().radio.stats().transmitted >= EVENTS && s.is_quiescent()
    });
    assert!(ok, "events did not complete");
    let sys = engine.machine();
    assert!(sys.fault().is_none(), "fault: {:?}", sys.fault());
    let ids = sys.meter_ids();
    let m = sys.meter();
    let active = |id| m.stats(id).mode_cycles[0].0 as f64 / EVENTS as f64;
    // Memory energy per event: total minus the idle-leakage share.
    let elapsed = sys.now();
    let idle_leak = Power::from_pw(8.0 * 409.0) * elapsed.at(m.clock());
    let mem_total = m.stats(ids.memory).energy;
    let mem_energy =
        Energy::from_joules(((mem_total - idle_leak).joules() / EVENTS as f64).max(0.0));
    EventProfile {
        event_cycles: sys.busy_cycles().0 / EVENTS,
        ep_active: active(ids.ep),
        filter_active: active(ids.filter),
        msg_active: active(ids.msgproc),
        timer_active: active(ids.timer),
        mem_energy,
    }
}

/// One row of the Figure 6 data.
#[derive(Debug, Clone)]
pub struct Fig6Row {
    /// Node duty cycle (event-processor utilization; 1.0 ≈ 800 samples/s).
    pub duty: f64,
    /// Events (samples) per second this duty cycle realises.
    pub events_per_second: f64,
    /// Event-processor average power.
    pub ep: Power,
    /// Timer subsystem average power (one of four timers always on).
    pub timer: Power,
    /// Message processor average power.
    pub msgproc: Power,
    /// Threshold filter average power.
    pub filter: Power,
    /// Main-memory average power.
    pub memory: Power,
    /// System total.
    pub total: Power,
    /// Atmel ATmega128 at normalised utilization (power-save sleep).
    pub atmel: Power,
    /// MSP430 range at normalised utilization.
    pub msp430: (Power, Power),
}

/// The analytic duty-cycle sweep, the construction of Figure 6.
/// `atmel_cycles_per_event` is the Mica2 cycle count for the same event
/// (Table 4's filtered send path, 1532 in the paper).
///
/// # Panics
///
/// Panics on duty cycles outside `(0, 1]`.
pub fn figure6_sweep(duties: &[f64], atmel_cycles_per_event: u64) -> Vec<Fig6Row> {
    figure6_sweep_with_profile(duties, atmel_cycles_per_event, &profile_event())
}

/// [`figure6_sweep`] against an already-measured [`EventProfile`]: the
/// single sweep definition both the analytic Figure 6 table and the
/// full-simulation cross-validation read from (one profiling pass, no
/// drift between the two).
///
/// # Panics
///
/// Panics on duty cycles outside `(0, 1]`.
pub fn figure6_sweep_with_profile(
    duties: &[f64],
    atmel_cycles_per_event: u64,
    profile: &EventProfile,
) -> Vec<Fig6Row> {
    let profile = *profile;
    let power = SystemPower::paper();
    let clock_hz = 100_000.0;
    let mica = Mica2Power::table1();
    let msp = Msp430Model::datasheet();
    let mix = |spec: ulp_sim::PowerSpec, util: f64| {
        Power::from_watts(spec.active.watts() * util + spec.idle.watts() * (1.0 - util))
    };
    duties
        .iter()
        .map(|&duty| {
            assert!(duty > 0.0 && duty <= 1.0, "duty {duty} out of (0, 1]");
            let rate = clock_hz * duty / profile.event_cycles as f64; // events/s
            let per_cycle = duty / profile.event_cycles as f64; // events/cycle
            let ep = mix(power.event_processor, per_cycle * profile.ep_active);
            let filter = mix(power.filter, per_cycle * profile.filter_active);
            let msgproc = mix(power.msgproc, per_cycle * profile.msg_active);
            // Timer: full active power only during register traffic; a
            // single counting timer draws the 1/32 background fraction
            // (one of four × the 1/8 counting-activity factor).
            let counting = ulp_core::slaves::timer_counting_background(&power.timer);
            let u_t = per_cycle * profile.timer_active;
            let timer = Power::from_watts(
                power.timer.active.watts() * u_t + counting.watts() * (1.0 - u_t),
            );
            let memory = Power::from_watts(profile.mem_energy.joules() * rate + 8.0 * 409e-12);
            let total = ep + timer + msgproc + filter + memory;

            let atmel_util = (rate * atmel_cycles_per_event as f64 / MICA_HZ).min(1.0);
            let atmel = mica.cpu_average(atmel_util, SleepMode::PowerSave);
            let msp430 = msp.average_range(atmel_util);

            Fig6Row {
                duty,
                events_per_second: rate,
                ep,
                timer,
                msgproc,
                filter,
                memory,
                total,
                atmel,
                msp430,
            }
        })
        .collect()
}

/// Full-simulation cross-validation of one duty-cycle point. Valid for
/// duty cycles the real system sustains (sample period longer than the
/// event plus radio airtime); returns the measured average power.
///
/// Measures a fresh [`EventProfile`]; when sweeping many points, profile
/// once and use [`simulate_duty_with_profile`].
///
/// # Panics
///
/// Panics if `duty` is outside the sustainable range.
pub fn simulate_duty(duty: f64) -> Power {
    simulate_duty_with_profile(duty, &profile_event())
}

/// [`simulate_duty`] against an already-measured [`EventProfile`], so a
/// sweep over many duty points pays for exactly one profiling pass and
/// each point is an independent (parallelizable) simulation.
///
/// # Panics
///
/// Panics if `duty` is outside the sustainable range.
pub fn simulate_duty_with_profile(duty: f64, profile: &EventProfile) -> Power {
    let period_cycles = (profile.event_cycles as f64 / duty).round() as u64;
    assert!(
        period_cycles >= profile.event_cycles + 130,
        "duty {duty} is beyond the sustainable event rate (radio airtime)"
    );
    let period = if period_cycles <= u16::MAX as u64 {
        SamplePeriod::Cycles(period_cycles as u16)
    } else {
        let base = 10_000u64;
        SamplePeriod::Chained {
            base: base as u16,
            count: period_cycles.div_ceil(base).min(u16::MAX as u64) as u16,
        }
    };
    let realised = period.cycles();
    let sys = app2_system(period);
    let mut engine = Engine::new(sys);
    engine.run_for(Cycles((realised * 20).max(2_000_000)));
    let sys = engine.machine();
    assert!(sys.fault().is_none(), "fault: {:?}", sys.fault());
    sys.average_power()
}

/// The paper's reference duty-cycle grid (Figure 6's x-axis, decades
/// from 1 down to 10⁻⁴).
pub fn paper_duty_grid() -> Vec<f64> {
    vec![1.0, 0.5, 0.2, 0.12, 0.1, 0.05, 0.02, 0.01, 1e-3, 1e-4]
}

/// Whether `duty` is within the range the real system sustains — the
/// sample period must cover the event itself plus the radio airtime
/// ([`simulate_duty`] asserts exactly this bound).
pub fn sustainable_duty(profile: &EventProfile, duty: f64) -> bool {
    let period_cycles = (profile.event_cycles as f64 / duty).round() as u64;
    period_cycles >= profile.event_cycles + 130
}

/// The subset of [`paper_duty_grid`] that full simulation can
/// cross-validate ([`sustainable_duty`] points). Both the `fig6`
/// binary's cross-validation table and the fleet sweep read this one
/// definition, so the analytic table and the simulated points can
/// never drift apart.
pub fn sim_crosscheck_duties(profile: &EventProfile) -> Vec<f64> {
    paper_duty_grid()
        .into_iter()
        .filter(|&d| sustainable_duty(profile, d))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_profile_matches_paper_shape() {
        let p = profile_event();
        assert!(
            (80..200).contains(&p.event_cycles),
            "event costs {} cycles; paper reports 127",
            p.event_cycles
        );
        assert!(
            p.filter_active >= 2.0 && p.filter_active <= 8.0,
            "filter {} cycles/event; paper reports 3",
            p.filter_active
        );
        assert!(
            p.msg_active >= 10.0 && p.msg_active <= 110.0,
            "msgproc {} cycles/event; paper reports 70 (with full 32-byte \
             transfers; our single-sample frames are 12 bytes)",
            p.msg_active
        );
        assert!(p.ep_active > 50.0);
        assert!(p.mem_energy.joules() > 0.0);
    }

    #[test]
    fn max_sample_rate_about_800_per_second() {
        // §6.1.3: "the cycle count at 100 kHz gives us a maximum sample
        // rate of roughly 800 samples/second".
        let p = profile_event();
        let rate = 100_000.0 / p.event_cycles as f64;
        assert!(
            (500.0..1300.0).contains(&rate),
            "max rate {rate}/s; paper says ~800/s"
        );
    }

    #[test]
    fn figure6_shape() {
        let rows = figure6_sweep(&paper_duty_grid(), 1500);
        // Monotonically decreasing total power with duty cycle.
        for pair in rows.windows(2) {
            assert!(
                pair[1].total.watts() <= pair[0].total.watts() + 1e-12,
                "total must fall with duty: {} then {}",
                pair[0].total,
                pair[1].total
            );
        }
        // Duty 1 approaches the Table 5 active total (paper: 24.99 µW
        // with every block fully switching; our operating point has the
        // timer mostly counting rather than being accessed).
        let top = &rows[0];
        assert!(
            (10.0..26.0).contains(&top.total.uw()),
            "duty-1 total {}; paper's ceiling is 24.99 µW",
            top.total
        );
        // Below duty 0.1 the system is under 2 µW (§7).
        for r in rows.iter().filter(|r| r.duty <= 0.1) {
            assert!(
                r.total.uw() < 2.5,
                "duty {} total {} should be ≲2 µW",
                r.duty,
                r.total
            );
        }
        // The floor is timer-dominated (one counting timer's background).
        let floor = rows.last().unwrap();
        assert!(
            floor.timer.uw() > 0.1 && floor.timer.uw() < 0.5,
            "timer floor {}",
            floor.timer
        );
        // Atmel sits roughly two orders of magnitude above at low duty.
        let ratio = floor.atmel.watts() / floor.total.watts();
        assert!(
            ratio > 50.0,
            "Atmel/system ratio {ratio}; paper says a little over 100×"
        );
    }

    #[test]
    fn simulation_validates_analytic_point() {
        let rows = figure6_sweep(&[0.02], 1500);
        let simulated = simulate_duty(0.02);
        let analytic = rows[0].total;
        let err = (simulated.watts() - analytic.watts()).abs() / analytic.watts();
        assert!(
            err < 0.25,
            "simulated {simulated} vs analytic {analytic}: {:.0}% apart",
            err * 100.0
        );
    }

    #[test]
    #[should_panic(expected = "sustainable")]
    fn oversubscribed_duty_rejected_in_simulation() {
        let _ = simulate_duty(0.9);
    }

    #[test]
    fn msp430_range_within_envelope() {
        let rows = figure6_sweep(&[0.1], 1500);
        let (lo, hi) = rows[0].msp430;
        assert!(lo.uw() >= 44.0 && hi.uw() <= 693.0);
        assert!(lo < hi);
    }
}
