#![warn(missing_docs)]
//! The paper's test applications, mapped to both platforms.
//!
//! §6.1.2 builds one monitoring application in four stages:
//!
//! 1. periodically collect samples and transmit packets;
//! 2. \+ threshold filtering;
//! 3. \+ receive and forward messages from other nodes;
//! 4. \+ receive and handle reconfiguration messages (sampling period and
//!    filter threshold) — the *irregular* events that wake the
//!    general-purpose microcontroller.
//!
//! §6.1.3 adds the two SNAP-comparison micro-apps, `blink` and `sense`.
//!
//! [`ulp`] expresses each application as event-processor ISRs (plus an
//! AVR handler for stage 4) for the paper's architecture; [`mica`]
//! expresses the same applications against the TinyOS-style runtime on
//! the Mica2 baseline. [`workload`] reproduces the Figure 6 duty-cycle
//! power analysis, and [`harvest`] models the energy-scavenging supplies
//! (§2) that motivate the 100 µW target.

pub mod harvest;
pub mod mica;
pub mod ulp;
pub mod workload;

pub use ulp::{AppStage, MonitoringConfig, UlpProgram};
