//! The test applications on the Mica2 baseline (TinyOS-style runtime).
//!
//! Each constructor returns a [`MicaApp`]: the assembled image plus the
//! probe anchors used for the Table 4 cycle measurements. Applications
//! mirror their event-driven counterparts in [`crate::ulp`] so the same
//! stimulus produces the same observable behaviour (identical 802.15.4
//! frames) on both platforms — only the cycle counts differ.

use std::collections::BTreeMap;
use ulp_isa::asm::Image;
use ulp_mica::board::{Mica2Board, ProbeId};
use ulp_mica::runtime::RuntimeBuilder;
use ulp_sim::Cycles;

/// A probe specification: name plus start/end symbols.
#[derive(Debug, Clone)]
pub struct ProbeSpec {
    /// Probe name (Table 4 row).
    pub name: &'static str,
    /// Start symbol.
    pub start: &'static str,
    /// End symbol.
    pub end: &'static str,
}

/// An assembled Mica2 application with its measurement probes.
#[derive(Debug, Clone)]
pub struct MicaApp {
    /// Application name.
    pub name: &'static str,
    image: Image,
    probes: Vec<ProbeSpec>,
}

impl MicaApp {
    /// The assembled program image.
    pub fn image(&self) -> &Image {
        &self.image
    }

    /// Total code size in bytes (the paper reports 11558 B for the full
    /// TinyOS stage-4 application; our mini-runtime is leaner).
    pub fn code_size(&self) -> usize {
        self.image.byte_len()
    }

    /// Build an instrumented board with all probes installed.
    pub fn board(
        &self,
        adc: Box<dyn FnMut(Cycles) -> u8 + Send>,
    ) -> (Mica2Board, BTreeMap<&'static str, ProbeId>) {
        let mut board = Mica2Board::new(&self.image, adc);
        let mut ids = BTreeMap::new();
        for p in &self.probes {
            let id = board.probe_symbols(&self.image, p.name, p.start, p.end);
            ids.insert(p.name, id);
        }
        (board, ids)
    }
}

/// Soft-timer-0 initialisation fragment: fire every `ticks`, repeating,
/// running `sample_task`; ADC completion continues at `send_task`.
fn sampling_init(ticks: u16) -> String {
    format!(
        r#"
    ; soft timer 0: period {ticks} ticks, repeating → sample_task
    ldi r16, {lo}
    sts TIMERS + 0, r16
    sts TIMERS + 2, r16
    ldi r16, {hi}
    sts TIMERS + 1, r16
    sts TIMERS + 3, r16
    ldi r16, lo8(sample_task / 2)
    sts TIMERS + 4, r16
    ldi r16, hi8(sample_task / 2)
    sts TIMERS + 5, r16
    ; ADC completion continues at send_task
    ldi r16, lo8(send_task / 2)
    sts ADC_TASK, r16
    ldi r16, hi8(send_task / 2)
    sts ADC_TASK + 1, r16
"#,
        lo = ticks & 0xFF,
        hi = ticks >> 8,
    )
}

const SAMPLE_TASK: &str = r#"
sample_task:
    ldi r16, 1
    out IO_ADC_CTRL, r16
    ret
"#;

/// Application 1: periodically sample and transmit.
pub fn app1(period_ticks: u16) -> MicaApp {
    let builder = RuntimeBuilder::new(0x0001)
        .app_init(sampling_init(period_ticks))
        .app_code(format!(
            r#"{SAMPLE_TASK}
send_task:
    lds r16, ADC_VALUE
    sts SCRATCH, r16
    ldi r20, 1
    rcall am_send
    ret
"#
        ));
    MicaApp {
        name: "app1-sample-send",
        image: builder.build().expect("app1 assembles"),
        probes: vec![ProbeSpec {
            name: "send_path",
            start: "isr_tick",
            end: "am_handoff",
        }],
    }
}

/// Application 2: application 1 plus threshold filtering (in software,
/// where the paper's architecture uses the filter slave).
pub fn app2(period_ticks: u16, threshold: u8) -> MicaApp {
    let mut init = sampling_init(period_ticks);
    init.push_str(&format!(
        "    ldi r16, {threshold}\n    sts APP_VARS, r16   ; threshold\n"
    ));
    let builder = RuntimeBuilder::new(0x0001).app_init(init).app_code(format!(
        r#"{SAMPLE_TASK}
.equ THRESHOLD, APP_VARS
send_task:
    lds r16, ADC_VALUE
    lds r17, THRESHOLD
    cp r16, r17
    brlo send_skip          ; below threshold: drop the sample
    sts SCRATCH, r16
    ldi r20, 1
    rcall am_send
send_skip:
    ret
"#
    ));
    MicaApp {
        name: "app2-filtered",
        image: builder.build().expect("app2 assembles"),
        probes: vec![ProbeSpec {
            name: "send_path_filtered",
            start: "isr_tick",
            end: "am_handoff",
        }],
    }
}

/// Application 3: application 2 plus receive-and-forward.
pub fn app3(period_ticks: u16, threshold: u8) -> MicaApp {
    let mut init = sampling_init(period_ticks);
    init.push_str(&format!(
        "    ldi r16, {threshold}\n    sts APP_VARS, r16\n"
    ));
    let builder = RuntimeBuilder::new(0x0001)
        .handles_rx(true)
        .app_init(init)
        .app_code(format!(
            r#"{SAMPLE_TASK}
.equ THRESHOLD, APP_VARS
send_task:
    lds r16, ADC_VALUE
    lds r17, THRESHOLD
    cp r16, r17
    brlo send_skip
    sts SCRATCH, r16
    ldi r20, 1
    rcall am_send
send_skip:
    ret
app_rx_irregular:
    ret
"#
        ));
    MicaApp {
        name: "app3-forwarding",
        image: builder.build().expect("app3 assembles"),
        probes: vec![
            ProbeSpec {
                name: "send_path_filtered",
                start: "isr_tick",
                end: "am_handoff",
            },
            ProbeSpec {
                name: "process_regular",
                start: "isr_rx",
                end: "fwd_handoff",
            },
        ],
    }
}

/// Application 4: application 3 plus remote reconfiguration. The payload
/// format matches the event-driven platform: `[param, value_lo,
/// value_hi]`, param 1 = sampling period (ticks), param 2 = threshold.
pub fn app4(period_ticks: u16, threshold: u8) -> MicaApp {
    let mut init = sampling_init(period_ticks);
    init.push_str(&format!(
        "    ldi r16, {threshold}\n    sts APP_VARS, r16\n"
    ));
    let builder = RuntimeBuilder::new(0x0001)
        .handles_rx(true)
        .app_init(init)
        .app_code(format!(
            r#"{SAMPLE_TASK}
.equ THRESHOLD, APP_VARS
send_task:
    lds r16, ADC_VALUE
    lds r17, THRESHOLD
    cp r16, r17
    brlo send_skip
    sts SCRATCH, r16
    ldi r20, 1
    rcall am_send
send_skip:
    ret

; ---- reconfiguration (irregular) messages ----
app_rx_irregular:
    lds r16, RXBUF + 9      ; param id
cfg_dispatched:             ; PROBE ANCHOR: message decoded, handler chosen
    cpi r16, 1
    breq cfg_timer
    cpi r16, 2
    breq cfg_thresh
    ret
cfg_timer:
    lds r17, RXBUF + 10     ; new period (ticks)
    lds r18, RXBUF + 11
tc_start:                   ; PROBE ANCHOR: the "timer change" segment
    sts TIMERS + 0, r17
    sts TIMERS + 1, r18
    sts TIMERS + 2, r17
    sts TIMERS + 3, r18
tc_end:
    ret
cfg_thresh:
    lds r17, RXBUF + 10
th_start:                   ; PROBE ANCHOR: the "threshold change" segment
    sts THRESHOLD, r17
th_end:
    ret
"#
        ));
    MicaApp {
        name: "app4-reconfigurable",
        image: builder.build().expect("app4 assembles"),
        probes: vec![
            ProbeSpec {
                name: "send_path_filtered",
                start: "isr_tick",
                end: "am_handoff",
            },
            ProbeSpec {
                name: "process_regular",
                start: "isr_rx",
                end: "fwd_handoff",
            },
            ProbeSpec {
                name: "process_irregular",
                start: "isr_rx",
                end: "cfg_dispatched",
            },
            ProbeSpec {
                name: "timer_change",
                start: "tc_start",
                end: "tc_end",
            },
            ProbeSpec {
                name: "threshold_change",
                start: "th_start",
                end: "th_end",
            },
        ],
    }
}

/// The `blink` comparison app: a soft timer toggles the LED.
pub fn blink(period_ticks: u16) -> MicaApp {
    let init = format!(
        r#"
    ldi r16, {lo}
    sts TIMERS + 0, r16
    sts TIMERS + 2, r16
    ldi r16, {hi}
    sts TIMERS + 1, r16
    sts TIMERS + 3, r16
    ldi r16, lo8(blink_task / 2)
    sts TIMERS + 4, r16
    ldi r16, hi8(blink_task / 2)
    sts TIMERS + 5, r16
"#,
        lo = period_ticks & 0xFF,
        hi = period_ticks >> 8,
    );
    let builder = RuntimeBuilder::new(0x0001).app_init(init).app_code(
        r#"
blink_task:
    in r16, IO_LED
    ldi r17, 1
    eor r16, r17
    out IO_LED, r16
blink_done:
    ret
"#,
    );
    MicaApp {
        name: "blink",
        image: builder.build().expect("blink assembles"),
        probes: vec![ProbeSpec {
            name: "blink",
            start: "isr_tick",
            end: "blink_done",
        }],
    }
}

/// The `sense` comparison app: periodic ADC sample into a running
/// average (software EWMA, α = 1/4).
pub fn sense(period_ticks: u16) -> MicaApp {
    let mut init = sampling_init(period_ticks);
    // The ADC continuation is the averaging task instead of a send.
    init = init.replace("send_task", "avg_task");
    let builder = RuntimeBuilder::new(0x0001).app_init(init).app_code(format!(
        r#"{SAMPLE_TASK}
.equ AVG, APP_VARS + 4
avg_task:
    lds r16, ADC_VALUE
    lds r17, AVG
    ; r19:r18 = 3·avg + x, then >> 2
    mov r18, r17
    ldi r19, 0
    lsl r18
    rol r19
    add r18, r17
    adc r19, r1
    add r18, r16
    adc r19, r1
    lsr r19
    ror r18
    lsr r19
    ror r18
    sts AVG, r18
sense_done:
    ret
"#
    ));
    MicaApp {
        name: "sense",
        image: builder.build().expect("sense assembles"),
        probes: vec![ProbeSpec {
            name: "sense",
            start: "isr_tick",
            end: "sense_done",
        }],
    }
}

/// RAM data address of the software running average in [`sense`].
pub const SENSE_AVG_ADDR: u16 = ulp_mica::runtime::layout::APP_VARS + 4;

#[cfg(test)]
mod tests {
    use super::*;
    use ulp_net::Frame;
    use ulp_sim::{Cycles, Engine};

    #[test]
    fn all_apps_assemble() {
        for app in [
            app1(1),
            app2(1, 50),
            app3(1, 0),
            app4(1, 0),
            blink(1),
            sense(1),
        ] {
            assert!(app.code_size() > 100, "{} too small", app.name);
            assert!(app.code_size() < 4096, "{} too large", app.name);
        }
    }

    #[test]
    fn app1_sends_frames_and_probe_fires() {
        let app = app1(1);
        let (board, probes) = app.board(Box::new(|_| 42));
        let mut engine = Engine::new(board);
        engine.run_until_cycle(Cycles(60_000));
        let mut board = engine.into_machine();
        assert!(!board.halted());
        let sent = board.take_sent();
        assert!(!sent.is_empty());
        let f = Frame::decode(&sent[0].1).unwrap();
        assert_eq!(f.payload, vec![42]);
        let cycles = board.probe(probes["send_path"]).first().unwrap();
        assert!(
            (300..4000).contains(&cycles),
            "send path {cycles}; paper's Mica2 measurement is 1522"
        );
    }

    #[test]
    fn app2_threshold_drops_low_samples() {
        let app = app2(1, 100);
        let (board, _) = app.board(Box::new(|_| 42)); // below threshold
        let mut engine = Engine::new(board);
        engine.run_until_cycle(Cycles(80_000));
        let mut board = engine.into_machine();
        assert!(board.take_sent().is_empty(), "below threshold: no sends");
        assert!(board.adc_conversions() > 5, "sampling continued");
    }

    #[test]
    fn app4_timer_change_probe_is_small() {
        let app = app4(50, 0);
        let (mut board, probes) = app.board(Box::new(|_| 0));
        let cmd = Frame::command(0x22, 0x0009, 0x0001, 1, &[1, 10, 0]).unwrap();
        board.schedule_rx(Cycles(30_000), cmd.encode());
        let mut engine = Engine::new(board);
        engine.run_until_cycle(Cycles(200_000));
        let board = engine.machine();
        let tc = board.probe(probes["timer_change"]).first().expect("fired");
        assert!(
            (8..=20).contains(&tc),
            "timer change {tc} cycles; paper's Mica2 measurement is 11"
        );
        let irr = board
            .probe(probes["process_irregular"])
            .first()
            .expect("fired");
        assert!(
            (100..1000).contains(&irr),
            "irregular path {irr}; paper's Mica2 measurement is 234"
        );
    }

    #[test]
    fn app3_forwarding_probe() {
        let app = app3(200, 0);
        let (mut board, probes) = app.board(Box::new(|_| 0));
        let fwd = Frame::data(0x22, 0x0009, 0x0000, 3, &[1, 2, 3, 4]).unwrap();
        board.schedule_rx(Cycles(30_000), fwd.encode());
        let mut engine = Engine::new(board);
        engine.run_until_cycle(Cycles(200_000));
        let mut board = engine.into_machine();
        let sent = board.take_sent();
        assert!(sent.iter().any(|(_, b)| *b == fwd.encode()), "forwarded");
        let cycles = board.probe(probes["process_regular"]).first().unwrap();
        assert!(
            (150..1500).contains(&cycles),
            "regular path {cycles}; paper's Mica2 measurement is 429"
        );
    }

    #[test]
    fn blink_toggles_and_measures() {
        let app = blink(1);
        let (board, probes) = app.board(Box::new(|_| 0));
        let mut engine = Engine::new(board);
        engine.run_until_cycle(Cycles(40_000));
        let board = engine.machine();
        let cycles = board.probe(probes["blink"]).first().unwrap();
        assert!(
            (100..1200).contains(&cycles),
            "blink {cycles}; paper's Mica2 measurement is 523"
        );
    }

    #[test]
    fn sense_converges_and_measures() {
        let app = sense(1);
        let (board, probes) = app.board(Box::new(|_| 200));
        let mut engine = Engine::new(board);
        engine.run_until_cycle(Cycles(300_000));
        let board = engine.machine();
        let avg = board.ram(SENSE_AVG_ADDR);
        assert!(avg > 150, "EWMA converged towards 200, got {avg}");
        let cycles = board.probe(probes["sense"]).first().unwrap();
        assert!(
            (150..2000).contains(&cycles),
            "sense {cycles}; paper's Mica2 measurement is 1118"
        );
    }
}
