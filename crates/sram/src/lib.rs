#![warn(missing_docs)]
//! Banked low-power SRAM model (paper §5.2, Figure 4, Table 3).
//!
//! The paper's 2-kilobyte on-chip SRAM is divided into 256-byte banks so
//! that unused portions can be Vdd-gated. Nanosim measurements of the
//! extracted 0.25 µm layout gave, per bank plus its control circuitry:
//! 1.93 µW active, 409 pW idle, 342 pW gated, with a 950 ns wake-up and a
//! whole-array active power of 2.07 µW at 100 kHz / 1.2 V (Table 3). The
//! paper's text additionally reports the bank *core* leaking 66.5 pW
//! ungated vs <1 pW gated (a >98% reduction); we reconcile the two by
//! modelling always-on control circuitry (≈342 pW) separately from the
//! gateable bank core (≈67 pW idle, ≈0.8 pW gated). A planned
//! "intelligent precharge" revision (−35% active power) is available as an
//! option.
//!
//! The model is *functional* (it stores bytes and refuses access to gated
//! banks) and *power-accurate at the architecture level* (it integrates
//! leakage over ticked cycles and charges per-access active energy).
//!
//! # Example
//!
//! ```
//! use ulp_sram::{BankedSram, SramConfig};
//!
//! let mut mem = BankedSram::new(SramConfig::paper());
//! mem.write(0x0123, 0xAB)?;
//! assert_eq!(mem.read(0x0123)?, 0xAB);
//!
//! // Gate bank 7 (addresses 0x0700..0x0800); accesses now fail.
//! mem.gate_bank(7);
//! assert!(mem.read(0x0700).is_err());
//! # Ok::<(), ulp_sram::SramError>(())
//! ```

use std::fmt;
use ulp_sim::{Cycles, Energy, Frequency, Power, Seconds, Voltage};

/// Configuration of the banked SRAM model.
#[derive(Debug, Clone)]
pub struct SramConfig {
    /// Total capacity in bytes.
    pub total_bytes: usize,
    /// Bank size in bytes (a power of two).
    pub bank_bytes: usize,
    /// Supply voltage (reporting only).
    pub supply: Voltage,
    /// Clock used to convert per-cycle activity into energy.
    pub clock: Frequency,
    /// Power of one bank + control while being accessed (Table 3: 1.93 µW).
    pub bank_active: Power,
    /// Power of one powered, unaccessed bank + control (Table 3: 409 pW).
    pub bank_idle: Power,
    /// Power of one Vdd-gated bank + control (Table 3: 342 pW).
    pub bank_gated: Power,
    /// Global decoder/driver power while the array is being accessed
    /// (brings the 2 KB array to the paper's 2.07 µW total).
    pub array_overhead_active: Power,
    /// Wake-up latency after un-gating a bank (paper: 950 ns).
    pub wake_latency: Seconds,
    /// Intelligent precharge (§5.2 future work): reduces active power 35%.
    pub intelligent_precharge: bool,
}

impl SramConfig {
    /// The paper's 2 KB, 8-bank SRAM at 1.2 V / 100 kHz.
    pub fn paper() -> SramConfig {
        SramConfig {
            total_bytes: 2048,
            bank_bytes: 256,
            supply: Voltage::from_volts(1.2),
            clock: Frequency::from_khz(100.0),
            bank_active: Power::from_uw(1.93),
            bank_idle: Power::from_pw(409.0),
            bank_gated: Power::from_pw(342.0),
            array_overhead_active: Power::from_nw(137.0),
            wake_latency: Seconds(950e-9),
            intelligent_precharge: false,
        }
    }

    /// Number of banks.
    pub fn banks(&self) -> usize {
        self.total_bytes / self.bank_bytes
    }

    /// Effective active power of one bank access, after the optional
    /// intelligent-precharge reduction.
    pub fn effective_bank_active(&self) -> Power {
        if self.intelligent_precharge {
            self.bank_active * 0.65
        } else {
            self.bank_active
        }
    }

    /// Wake-up latency in whole clock cycles (at least 1).
    pub fn wake_cycles(&self) -> Cycles {
        let cycles = (self.wake_latency.0 * self.clock.hz()).ceil() as u64;
        Cycles(cycles.max(1))
    }

    fn validate(&self) {
        assert!(
            self.bank_bytes.is_power_of_two(),
            "bank size must be a power of two"
        );
        assert!(
            self.total_bytes.is_multiple_of(self.bank_bytes) && self.total_bytes > 0,
            "total size must be a positive multiple of the bank size"
        );
    }
}

impl Default for SramConfig {
    fn default() -> Self {
        SramConfig::paper()
    }
}

/// Power state of one bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BankState {
    /// Powered; contents retained; accessible.
    On,
    /// Vdd-gated; contents lost; access is an error.
    Gated,
}

/// Error accessing the SRAM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SramError {
    /// Address beyond the array.
    OutOfRange {
        /// The offending address.
        addr: u16,
        /// Total capacity in bytes.
        size: usize,
    },
    /// Access to a Vdd-gated bank.
    BankGated {
        /// The offending address.
        addr: u16,
        /// The gated bank's index.
        bank: usize,
    },
}

impl fmt::Display for SramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SramError::OutOfRange { addr, size } => {
                write!(f, "address 0x{addr:04X} outside {size}-byte SRAM")
            }
            SramError::BankGated { addr, bank } => {
                write!(f, "access to 0x{addr:04X} in Vdd-gated bank {bank}")
            }
        }
    }
}

impl std::error::Error for SramError {}

/// Per-bank statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BankStats {
    /// Read accesses.
    pub reads: u64,
    /// Write accesses.
    pub writes: u64,
    /// Cycles spent gated (accumulated via [`BankedSram::tick`]).
    pub gated_cycles: u64,
}

/// The banked SRAM: functional storage plus energy integration.
#[derive(Debug, Clone)]
pub struct BankedSram {
    config: SramConfig,
    data: Vec<u8>,
    states: Vec<BankState>,
    stats: Vec<BankStats>,
    energy: Energy,
    access_energy_this_tick: Energy,
}

impl BankedSram {
    /// A fresh, fully powered, zeroed SRAM.
    pub fn new(config: SramConfig) -> BankedSram {
        config.validate();
        let banks = config.banks();
        BankedSram {
            data: vec![0; config.total_bytes],
            states: vec![BankState::On; banks],
            stats: vec![BankStats::default(); banks],
            energy: Energy::ZERO,
            access_energy_this_tick: Energy::ZERO,
            config,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &SramConfig {
        &self.config
    }

    /// Total capacity in bytes.
    pub fn len(&self) -> usize {
        self.config.total_bytes
    }

    /// Always false: the SRAM has fixed, non-zero capacity.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Bank index containing `addr`.
    ///
    /// # Errors
    ///
    /// Fails if `addr` is outside the array.
    pub fn bank_of(&self, addr: u16) -> Result<usize, SramError> {
        let a = addr as usize;
        if a >= self.config.total_bytes {
            return Err(SramError::OutOfRange {
                addr,
                size: self.config.total_bytes,
            });
        }
        Ok(a / self.config.bank_bytes)
    }

    /// State of bank `bank`.
    ///
    /// # Panics
    ///
    /// Panics if `bank` is out of range.
    pub fn bank_state(&self, bank: usize) -> BankState {
        self.states[bank]
    }

    /// Statistics of bank `bank`.
    ///
    /// # Panics
    ///
    /// Panics if `bank` is out of range.
    pub fn bank_stats(&self, bank: usize) -> BankStats {
        self.stats[bank]
    }

    /// Read one byte.
    ///
    /// # Errors
    ///
    /// Fails on out-of-range addresses and gated banks.
    pub fn read(&mut self, addr: u16) -> Result<u8, SramError> {
        let bank = self.accessible_bank(addr)?;
        self.charge_access();
        self.stats[bank].reads += 1;
        Ok(self.data[addr as usize])
    }

    /// Write one byte.
    ///
    /// # Errors
    ///
    /// Fails on out-of-range addresses and gated banks.
    pub fn write(&mut self, addr: u16, value: u8) -> Result<(), SramError> {
        let bank = self.accessible_bank(addr)?;
        self.charge_access();
        self.stats[bank].writes += 1;
        self.data[addr as usize] = value;
        Ok(())
    }

    /// Non-charging debug view of a byte (for tests and the harness; does
    /// not model a bus access and works on gated banks).
    pub fn peek(&self, addr: u16) -> Option<u8> {
        self.data.get(addr as usize).copied()
    }

    /// Non-charging debug write.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of range.
    pub fn poke(&mut self, addr: u16, value: u8) {
        let a = addr as usize;
        assert!(
            a < self.data.len(),
            "poke address 0x{addr:04X} out of range"
        );
        self.data[a] = value;
    }

    /// Fault-injection hook: flip bit `bit & 7` of the byte at `addr`
    /// as a single-event upset would — no bus access is modelled, no
    /// energy is charged, no statistics move.
    ///
    /// Returns `true` when a live byte was flipped. Returns `false` when
    /// the strike is absorbed: the address is outside the array, or the
    /// bank is Vdd-gated (gated banks lose their contents anyway and are
    /// zeroed on wake, so an upset there is architecturally invisible).
    pub fn flip_bit(&mut self, addr: u16, bit: u8) -> bool {
        match self.bank_of(addr) {
            Ok(bank) if self.states[bank] == BankState::On => {
                self.data[addr as usize] ^= 1 << (bit & 7);
                true
            }
            _ => false,
        }
    }

    /// Load a byte image at `origin` (non-charging; for initialisation).
    ///
    /// # Panics
    ///
    /// Panics if the image extends past the end of the array.
    pub fn load(&mut self, origin: u16, bytes: &[u8]) {
        let start = origin as usize;
        assert!(
            start + bytes.len() <= self.data.len(),
            "image of {} bytes at 0x{origin:04X} exceeds SRAM",
            bytes.len()
        );
        self.data[start..start + bytes.len()].copy_from_slice(bytes);
    }

    /// Vdd-gate a bank. Contents are lost (zeroed on wake, matching real
    /// SRAM losing state). Gating an already-gated bank is a no-op.
    ///
    /// # Panics
    ///
    /// Panics if `bank` is out of range.
    pub fn gate_bank(&mut self, bank: usize) {
        self.states[bank] = BankState::Gated;
    }

    /// Un-gate a bank, returning the wake-up latency in cycles the caller
    /// must stall before accessing it (paper: 950 ns, <1 cycle at 100 kHz,
    /// modelled as 1 cycle). Contents come back zeroed.
    ///
    /// # Panics
    ///
    /// Panics if `bank` is out of range.
    pub fn ungate_bank(&mut self, bank: usize) -> Cycles {
        if self.states[bank] == BankState::Gated {
            self.states[bank] = BankState::On;
            let base = bank * self.config.bank_bytes;
            self.data[base..base + self.config.bank_bytes].fill(0);
            self.config.wake_cycles()
        } else {
            Cycles::ZERO
        }
    }

    /// Advance simulated time by `cycles`, integrating leakage for every
    /// bank according to its state. Per-access active energy charged by
    /// [`read`](Self::read)/[`write`](Self::write) since the previous tick
    /// is folded in here.
    pub fn tick(&mut self, cycles: Cycles) {
        let t = cycles.at(self.config.clock);
        let mut leak = Power::ZERO;
        for (state, stats) in self.states.iter().zip(&mut self.stats) {
            match state {
                BankState::On => leak += self.config.bank_idle,
                BankState::Gated => {
                    leak += self.config.bank_gated;
                    stats.gated_cycles += cycles.0;
                }
            }
        }
        self.energy += leak * t;
        self.energy += self.access_energy_this_tick;
        self.access_energy_this_tick = Energy::ZERO;
    }

    /// Total energy consumed so far.
    pub fn energy(&self) -> Energy {
        self.energy
    }

    /// Current leakage power given bank states (no accesses).
    pub fn idle_power(&self) -> Power {
        self.states
            .iter()
            .map(|s| match s {
                BankState::On => self.config.bank_idle,
                BankState::Gated => self.config.bank_gated,
            })
            .sum()
    }

    /// Power of the whole array if one bank is accessed every cycle (the
    /// paper's "2 KB SRAM consumes 2.07 µW operating at 100 kHz" figure).
    pub fn full_activity_power(&self) -> Power {
        let others = self.config.banks().saturating_sub(1);
        self.config.effective_bank_active()
            + self.config.bank_idle * others as f64
            + self.config.array_overhead_active
    }

    fn accessible_bank(&self, addr: u16) -> Result<usize, SramError> {
        let bank = self.bank_of(addr)?;
        if self.states[bank] == BankState::Gated {
            return Err(SramError::BankGated { addr, bank });
        }
        Ok(bank)
    }

    /// One access adds the active-vs-idle delta for the bank plus the
    /// array overhead for one cycle.
    fn charge_access(&mut self) {
        let period = self.config.clock.period();
        let delta_w = (self.config.effective_bank_active().watts() - self.config.bank_idle.watts())
            .max(0.0)
            + self.config.array_overhead_active.watts();
        self.access_energy_this_tick += Power::from_watts(delta_w) * period;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sram() -> BankedSram {
        BankedSram::new(SramConfig::paper())
    }

    #[test]
    fn paper_geometry() {
        let c = SramConfig::paper();
        assert_eq!(c.banks(), 8);
        assert_eq!(c.wake_cycles(), Cycles(1)); // 950 ns < one 10 µs cycle
    }

    #[test]
    fn read_write_roundtrip() {
        let mut m = sram();
        m.write(0, 1).unwrap();
        m.write(2047, 255).unwrap();
        assert_eq!(m.read(0).unwrap(), 1);
        assert_eq!(m.read(2047).unwrap(), 255);
        assert_eq!(m.bank_stats(0).reads, 1);
        assert_eq!(m.bank_stats(7).writes, 1);
    }

    #[test]
    fn out_of_range_rejected() {
        let mut m = sram();
        assert!(matches!(
            m.read(2048),
            Err(SramError::OutOfRange { addr: 2048, .. })
        ));
        assert!(m.write(0xFFFF, 0).is_err());
        assert!(m.bank_of(0x0800).is_err());
    }

    #[test]
    fn gated_bank_refuses_access_and_loses_contents() {
        let mut m = sram();
        m.write(0x0300, 42).unwrap(); // bank 3
        m.gate_bank(3);
        assert_eq!(m.bank_state(3), BankState::Gated);
        assert!(matches!(
            m.read(0x0300),
            Err(SramError::BankGated { bank: 3, .. })
        ));
        let wake = m.ungate_bank(3);
        assert_eq!(wake, Cycles(1));
        assert_eq!(m.read(0x0300).unwrap(), 0, "contents lost across gating");
        // Un-gating an on bank is free.
        assert_eq!(m.ungate_bank(3), Cycles::ZERO);
    }

    #[test]
    fn idle_power_matches_table3() {
        let mut m = sram();
        // All 8 banks on: 8 × 409 pW = 3.272 nW.
        assert!((m.idle_power().watts() - 8.0 * 409e-12).abs() < 1e-15);
        // Gate 4 banks: 4 × 409 + 4 × 342 pW.
        for b in 0..4 {
            m.gate_bank(b);
        }
        assert!((m.idle_power().watts() - (4.0 * 409e-12 + 4.0 * 342e-12)).abs() < 1e-15);
    }

    #[test]
    fn full_activity_power_near_paper_2_07_uw() {
        let m = sram();
        let p = m.full_activity_power().uw();
        assert!((p - 2.07).abs() < 0.02, "got {p} µW");
    }

    #[test]
    fn energy_integration_idle_only() {
        let mut m = sram();
        m.tick(Cycles(100_000)); // 1 s at 100 kHz
        let e = m.energy().joules();
        assert!((e - 8.0 * 409e-12).abs() < 1e-15, "1 s of idle leakage");
    }

    #[test]
    fn access_energy_charged_on_tick() {
        let mut m = sram();
        m.read(0).unwrap();
        assert_eq!(m.energy(), Energy::ZERO, "charged only at tick");
        m.tick(Cycles(1));
        let e = m.energy().joules();
        // One cycle: idle leakage (8 banks) + (active - idle) + overhead.
        let period = 1e-5;
        let expect = (8.0 * 409e-12 + (1.93e-6 - 409e-12) + 137e-9) * period;
        assert!((e - expect).abs() < 1e-18, "got {e}, want {expect}");
    }

    #[test]
    fn sustained_access_averages_to_full_activity_power() {
        let mut m = sram();
        for i in 0..100_000u32 {
            m.read((i % 2048) as u16).unwrap();
            m.tick(Cycles(1));
        }
        let avg = m.energy().average_over(Seconds(1.0)).uw();
        assert!(
            (avg - m.full_activity_power().uw()).abs() < 0.02,
            "avg {avg} µW"
        );
    }

    #[test]
    fn gating_reduces_energy() {
        let mut all_on = sram();
        all_on.tick(Cycles(1_000_000));
        let mut gated = sram();
        for b in 1..8 {
            gated.gate_bank(b);
        }
        gated.tick(Cycles(1_000_000));
        assert!(gated.energy() < all_on.energy());
        assert_eq!(gated.bank_stats(1).gated_cycles, 1_000_000);
    }

    #[test]
    fn intelligent_precharge_cuts_active_power_35_percent() {
        let mut cfg = SramConfig::paper();
        cfg.intelligent_precharge = true;
        let m = BankedSram::new(cfg);
        let base = SramConfig::paper().bank_active.watts();
        assert!((m.config().effective_bank_active().watts() - 0.65 * base).abs() < 1e-15);
        assert!(m.full_activity_power() < sram().full_activity_power());
    }

    #[test]
    fn load_and_peek() {
        let mut m = sram();
        m.load(0x0100, &[1, 2, 3]);
        assert_eq!(m.peek(0x0101), Some(2));
        assert_eq!(m.peek(0x0900), None);
        m.poke(0x0000, 9);
        assert_eq!(m.peek(0x0000), Some(9));
        // load/poke charge no energy.
        m.tick(Cycles::ZERO);
        assert_eq!(m.energy(), Energy::ZERO);
    }

    #[test]
    fn flip_bit_hits_live_bytes_only() {
        let mut m = sram();
        m.poke(0x0120, 0b0000_0001);
        assert!(m.flip_bit(0x0120, 0));
        assert_eq!(m.peek(0x0120), Some(0));
        assert!(m.flip_bit(0x0120, 11), "bit index wraps mod 8");
        assert_eq!(m.peek(0x0120), Some(0b0000_1000));
        // Absorbed strikes: out of range, gated bank.
        assert!(!m.flip_bit(0x0900, 0));
        m.gate_bank(1);
        assert!(!m.flip_bit(0x0120, 0));
        assert_eq!(m.peek(0x0120), Some(0b0000_1000), "gated byte untouched");
        // No energy, no access stats.
        m.tick(Cycles::ZERO);
        assert_eq!(m.energy(), Energy::ZERO);
        assert_eq!(m.bank_stats(1).reads + m.bank_stats(1).writes, 0);
    }

    #[test]
    #[should_panic(expected = "exceeds SRAM")]
    fn oversized_load_panics() {
        let mut m = sram();
        m.load(0x07FF, &[0, 1]);
    }

    #[test]
    fn error_display() {
        let e = SramError::BankGated {
            addr: 0x300,
            bank: 3,
        };
        assert!(e.to_string().contains("bank 3"));
        let e = SramError::OutOfRange {
            addr: 0x900,
            size: 2048,
        };
        assert!(e.to_string().contains("2048"));
    }
}
