//! TI MSP430 analytical power model (§6.3, the Telos comparison).
//!
//! The paper quotes the MSP430F149 datasheet: 616–693 µW active at
//! 1 MHz / 2.2 V, and 44–123 µW in the 32 kHz LPM3 idle mode — noting
//! (after the ZebraNet experience) that LPM3 is the most practical
//! low-power mode because peripherals and interrupts still work there.
//! Assuming cycle-for-cycle parity with the Atmel, the paper computes
//! 113–192 µW at the 0.1-utilization point.

use ulp_sim::Power;

/// Datasheet power envelope of the MSP430F149.
#[derive(Debug, Clone, Copy)]
pub struct Msp430Model {
    /// Active power range at 1 MHz / 2.2 V (W).
    pub active_min: Power,
    /// Upper end of the active range.
    pub active_max: Power,
    /// 32 kHz idle-mode (LPM3) power range (W).
    pub idle_min: Power,
    /// Upper end of the idle range.
    pub idle_max: Power,
}

impl Msp430Model {
    /// The datasheet numbers the paper quotes.
    pub fn datasheet() -> Msp430Model {
        Msp430Model {
            active_min: Power::from_uw(616.0),
            active_max: Power::from_uw(693.0),
            idle_min: Power::from_uw(44.0),
            idle_max: Power::from_uw(123.0),
        }
    }

    /// Average-power range at a given utilization (fraction of time
    /// active), assuming the same cycle-level performance as the Atmel —
    /// the paper's normalization.
    ///
    /// # Panics
    ///
    /// Panics if `utilization` is outside `[0, 1]`.
    pub fn average_range(&self, utilization: f64) -> (Power, Power) {
        assert!(
            (0.0..=1.0).contains(&utilization),
            "utilization {utilization} out of [0, 1]"
        );
        let mix = |active: Power, idle: Power| {
            Power::from_watts(utilization * active.watts() + (1.0 - utilization) * idle.watts())
        };
        (
            mix(self.active_min, self.idle_min),
            mix(self.active_max, self.idle_max),
        )
    }
}

impl Default for Msp430Model {
    fn default() -> Self {
        Msp430Model::datasheet()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_range_at_point_one_utilization() {
        // §6.3: "the MSP430 will consume between 113 µW and 192 µW" at
        // the 0.1 utilization point.
        let (lo, hi) = Msp430Model::datasheet().average_range(0.1);
        assert!((lo.uw() - 101.2).abs() < 1.0, "got {lo}");
        assert!((hi.uw() - 180.0).abs() < 1.0, "got {hi}");
        // The paper's 113–192 µW appears to include a small additional
        // overhead; our datasheet arithmetic lands within 12% of it.
        assert!(lo.uw() > 90.0 && hi.uw() < 200.0);
    }

    #[test]
    fn endpoints() {
        let m = Msp430Model::datasheet();
        let (lo, hi) = m.average_range(1.0);
        assert_eq!(lo, m.active_min);
        assert_eq!(hi, m.active_max);
        let (lo, hi) = m.average_range(0.0);
        assert_eq!(lo, m.idle_min);
        assert_eq!(hi, m.idle_max);
    }

    #[test]
    #[should_panic(expected = "out of [0, 1]")]
    fn bad_utilization_rejected() {
        let _ = Msp430Model::datasheet().average_range(2.0);
    }
}
