//! I/O-register map and interrupt vectors of the Mica2 board model.
//!
//! A simplified, documented register file stands in for the ATmega128's
//! (the runtime is assembled against these constants, so consistency is
//! mechanical). Addresses are AVR I/O addresses (0–63); `in`/`out` reach
//! them directly, `lds`/`sts` at the address + 0x20.

/// LED output latch (bit 0 = red LED; the `blink` app toggles it).
pub const LED: u8 = 0x10;

/// Tick-timer control: bit 0 enable, bit 1 interrupt enable.
pub const TIMER_CTRL: u8 = 0x11;
/// Tick-timer compare value: an interrupt fires every
/// `PRESCALER × (compare + 1)` CPU cycles.
pub const TIMER_COMPARE: u8 = 0x12;

/// ADC control: write 1 to start a conversion (completion interrupt).
pub const ADC_CTRL: u8 = 0x14;
/// ADC result (valid after the conversion-complete interrupt).
pub const ADC_DATA: u8 = 0x15;

/// Radio send port: write the MAC length to transmit the packet staged
/// at [`TXBUF`]. The packet is captured immediately (the paper excludes
/// the TinyOS radio stack's cycles); a send-done interrupt follows after
/// the on-air time.
pub const RADIO_SEND: u8 = 0x16;
/// Length of the packet most recently delivered to [`RXBUF`].
pub const RADIO_RXLEN: u8 = 0x17;

/// Sleep-mode select for energy accounting: 0 = idle (3.2 mA),
/// 1 = power-save (0.110 mA). TinyOS's power management uses power-save
/// when no peripherals need the main clock.
pub const POWER_CTRL: u8 = 0x18;

/// Hardware tick-timer prescaler (CPU cycles per timer count).
pub const PRESCALER: u32 = 32;

/// ADC conversion latency in CPU cycles (13 ADC clocks at CK/8, rounded;
/// the CPU sleeps or schedules during it).
pub const ADC_LATENCY: u64 = 104;

/// RAM address of the outgoing packet buffer the messaging layer stages.
pub const TXBUF: u16 = 0x0200;
/// RAM address where the board delivers received packets.
pub const RXBUF: u16 = 0x0240;
/// Size of each packet buffer.
pub const PKT_BUF_LEN: u16 = 40;

/// Interrupt vector numbers (vector `v` jumps to word address `2·v`).
pub mod vectors {
    /// Reset.
    pub const RESET: u8 = 0;
    /// Tick-timer compare match.
    pub const TIMER: u8 = 1;
    /// ADC conversion complete.
    pub const ADC: u8 = 2;
    /// Packet received (already in `RXBUF`).
    pub const RADIO_RX: u8 = 3;
    /// Packet transmission complete.
    pub const RADIO_SENDDONE: u8 = 4;
    /// Number of vectors (the runtime reserves this many slots).
    pub const COUNT: u8 = 5;
}

/// Mica2 CPU clock in hertz (7.3728 MHz crystal).
pub const CPU_HZ: f64 = 7_372_800.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_addresses_fit_io_space() {
        for a in [
            LED,
            TIMER_CTRL,
            TIMER_COMPARE,
            ADC_CTRL,
            ADC_DATA,
            RADIO_SEND,
            RADIO_RXLEN,
            POWER_CTRL,
        ] {
            assert!(a < 64);
            // Stay clear of SPL/SPH/SREG (0x3D–0x3F).
            assert!(a < 0x3D);
        }
    }

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn buffers_do_not_overlap() {
        assert!(TXBUF + PKT_BUF_LEN <= RXBUF);
    }
}
