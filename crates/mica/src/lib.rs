#![warn(missing_docs)]
//! Mica2 baseline platform: an ATmega128-class AVR running a miniature
//! TinyOS-style runtime — the commodity system the paper compares its
//! architecture against (Table 4, Figure 6).
//!
//! The paper measured the Mica2 side with Atemu, a fine-grained AVR
//! emulator, running applications written against the TinyOS component
//! library. This crate reproduces that methodology mechanically:
//!
//! * [`board`] — the Mica2 board model: the `ulp-mcu8` AVR core with
//!   Harvard memory, a tick timer, an interrupt-driven ADC, and a
//!   packet-level radio port (the byte-level CC1000 radio stack is
//!   excluded from cycle counts in the paper, so the port hands off whole
//!   packets). PC-watchpoint probes measure cycle counts of code
//!   segments, as Atemu did.
//! * [`runtime`] — a TinyOS-style runtime written in AVR assembly: a
//!   FIFO task scheduler with sleep-on-empty, software timer
//!   virtualisation over the hardware tick, ADC and messaging layers,
//!   and active-message dispatch. Applications plug in as assembly
//!   fragments.
//! * [`power`] — the Mica2 current draws of Table 1 (from PowerTOSSIM)
//!   and the duty-cycle power model used for the Atmel comparison in
//!   Figure 6.
//! * [`msp430`] — the TI MSP430 analytical model used for the Telos
//!   comparison in §6.3.

pub mod board;
pub mod io;
pub mod msp430;
pub mod power;
pub mod runtime;

pub use board::{Mica2Board, Probe, ProbeError, ProbeId};
pub use power::{Mica2Power, SleepMode};
pub use runtime::RuntimeBuilder;
