//! The Mica2 board model: ATmega128-class CPU, tick timer, ADC, and a
//! packet-level radio port, with Atemu-style PC-watchpoint probes for
//! cycle measurements.

use crate::io;
use std::collections::VecDeque;
use ulp_isa::asm::Image;
use ulp_mcu8::{Bus, Cpu, Predecoded};
use ulp_net::PhyTiming;
use ulp_sim::fault::{FaultDisposition, FaultKind};
use ulp_sim::telemetry::{Log2Histogram, Metrics};
use ulp_sim::{Cycles, Simulatable, StepOutcome, TraceBuffer, TraceKind};

/// RAM starts at data address 0x0100 on the ATmega128.
pub const RAM_BASE: u16 = 0x0100;
/// 4 KB of on-chip SRAM.
pub const RAM_SIZE: usize = 4096;

/// Handle to a registered cycle probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProbeId(usize);

/// Why a symbol-addressed probe could not be registered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProbeError {
    /// The named symbol is absent from the image.
    MissingSymbol(String),
    /// The symbol resolves to an odd byte address, which cannot name an
    /// instruction boundary.
    UnalignedSymbol {
        /// The offending symbol.
        symbol: String,
        /// Its (odd) byte address.
        addr: i64,
    },
}

impl std::fmt::Display for ProbeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProbeError::MissingSymbol(s) => write!(f, "symbol `{s}` not found"),
            ProbeError::UnalignedSymbol { symbol, addr } => {
                write!(f, "symbol `{symbol}` not word-aligned (0x{addr:04X})")
            }
        }
    }
}

impl std::error::Error for ProbeError {}

/// A PC-watchpoint cycle probe: counts cycles from the first fetch of
/// `start` to the next fetch of `end` (word addresses), like measuring a
/// code segment in Atemu.
#[derive(Debug, Clone)]
pub struct Probe {
    /// Human-readable name.
    pub name: String,
    start: u16,
    end: u16,
    armed_at: Option<u64>,
    results: Vec<u64>,
}

impl Probe {
    /// Completed measurements, in order.
    pub fn results(&self) -> &[u64] {
        &self.results
    }

    /// First completed measurement.
    pub fn first(&self) -> Option<u64> {
        self.results.first().copied()
    }
}

/// CPU power mode for energy accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CpuMode {
    Active,
    IdleSleep,
    PowerSave,
}

#[derive(Debug)]
struct TickTimer {
    enabled: bool,
    irq_en: bool,
    compare: u8,
    counter: u64,
}

impl TickTimer {
    fn period(&self) -> u64 {
        io::PRESCALER as u64 * (self.compare as u64 + 1)
    }
    fn cycles_to_fire(&self) -> Option<u64> {
        (self.enabled && self.irq_en).then(|| self.period() - self.counter)
    }
}

/// The board's memory and peripherals, visible to the CPU as a [`Bus`].
#[derive(Debug)]
struct MicaBus {
    program: Vec<u16>,
    ram: Vec<u8>,
    led: u8,
    power_ctrl: u8,
    timer: TickTimer,
    adc_busy: Option<u64>,
    adc_data: u8,
    radio_rxlen: u8,
    senddone_in: Option<u64>,
    tx_capture: Option<Vec<u8>>,
    pending: u8, // bitmask over vectors 1..=4
    /// Current cycle (fed by the board for latency timestamps).
    now: u64,
    /// Cycle at which each pending vector was asserted.
    pending_since: [u64; 8],
    /// Bitmask: vector was asserted while the CPU slept.
    sleep_at_assert: u8,
    /// Bitmask of vectors asserted since the last board drain (trace).
    newly: u8,
    /// Whether the CPU was sleeping (fed by the board).
    cpu_sleeping: bool,
    /// Latency histogram recording on/off (default off).
    timing: bool,
    /// Assert→dispatch wait distribution (cycles).
    irq_service: Log2Histogram,
    /// Assert→dispatch wait for asserts that arrived while sleeping.
    wake_latency: Log2Histogram,
    /// Events asserted per vector.
    raised_by_vec: [u64; 8],
    /// Most recent dispatch (vector, waited), drained by the board.
    last_dispatch: Option<(u8, u64)>,
}

impl MicaBus {
    fn new() -> MicaBus {
        MicaBus {
            program: vec![0; 65_536],
            ram: vec![0; RAM_SIZE],
            led: 0,
            power_ctrl: 0,
            timer: TickTimer {
                enabled: false,
                irq_en: false,
                compare: 255,
                counter: 0,
            },
            adc_busy: None,
            adc_data: 0,
            radio_rxlen: 0,
            senddone_in: None,
            tx_capture: None,
            pending: 0,
            now: 0,
            pending_since: [0; 8],
            sleep_at_assert: 0,
            newly: 0,
            cpu_sleeping: false,
            timing: false,
            irq_service: Log2Histogram::new(),
            wake_latency: Log2Histogram::new(),
            raised_by_vec: [0; 8],
            last_dispatch: None,
        }
    }

    /// Assert interrupt vector `v`, timestamping first asserts (a vector
    /// already pending keeps its original timestamp — the AVR's one-deep
    /// interrupt flags behave the same way).
    fn raise(&mut self, v: u8) {
        if self.pending & (1 << v) == 0 {
            self.pending_since[v as usize] = self.now;
            if self.cpu_sleeping {
                self.sleep_at_assert |= 1 << v;
            } else {
                self.sleep_at_assert &= !(1 << v);
            }
        }
        self.pending |= 1 << v;
        self.newly |= 1 << v;
        self.raised_by_vec[v as usize] += 1;
    }

    fn ram_read(&self, addr: u16) -> u8 {
        let a = addr.wrapping_sub(RAM_BASE) as usize;
        self.ram.get(a).copied().unwrap_or(0)
    }

    fn ram_write(&mut self, addr: u16, value: u8) {
        let a = addr.wrapping_sub(RAM_BASE) as usize;
        if let Some(slot) = self.ram.get_mut(a) {
            *slot = value;
        }
    }
}

impl Bus for MicaBus {
    fn fetch(&mut self, pc: u16) -> u16 {
        self.program[pc as usize]
    }
    fn read(&mut self, addr: u16) -> u8 {
        self.ram_read(addr)
    }
    fn write(&mut self, addr: u16, value: u8) {
        self.ram_write(addr, value);
    }
    fn io_read(&mut self, addr: u8) -> u8 {
        match addr {
            io::LED => self.led,
            io::TIMER_CTRL => (self.timer.enabled as u8) | ((self.timer.irq_en as u8) << 1),
            io::TIMER_COMPARE => self.timer.compare,
            io::ADC_CTRL => self.adc_busy.is_some() as u8,
            io::ADC_DATA => self.adc_data,
            io::RADIO_RXLEN => self.radio_rxlen,
            io::POWER_CTRL => self.power_ctrl,
            _ => 0,
        }
    }
    fn io_write(&mut self, addr: u8, value: u8) {
        match addr {
            io::LED => self.led = value,
            io::TIMER_CTRL => {
                self.timer.enabled = value & 1 != 0;
                self.timer.irq_en = value & 2 != 0;
                if !self.timer.enabled {
                    self.timer.counter = 0;
                }
            }
            io::TIMER_COMPARE => self.timer.compare = value,
            io::ADC_CTRL
                if value == 1 && self.adc_busy.is_none() => {
                    self.adc_busy = Some(io::ADC_LATENCY);
                }
            io::RADIO_SEND => {
                let len = (value as u16).min(io::PKT_BUF_LEN) as usize;
                let mut pkt = Vec::with_capacity(len);
                for i in 0..len {
                    pkt.push(self.ram_read(io::TXBUF + i as u16));
                }
                let airtime_us = PhyTiming::default().frame_airtime_us(len);
                self.senddone_in = Some((airtime_us * 1e-6 * io::CPU_HZ) as u64);
                self.tx_capture = Some(pkt);
            }
            io::POWER_CTRL => self.power_ctrl = value,
            _ => {}
        }
    }
    fn pending_irq(&mut self) -> Option<u8> {
        if self.pending == 0 {
            return None;
        }
        let v = self.pending.trailing_zeros() as u8;
        self.pending &= !(1 << v);
        let waited = self.now.saturating_sub(self.pending_since[v as usize]);
        if self.timing {
            self.irq_service.record(waited);
            if self.sleep_at_assert & (1 << v) != 0 {
                self.wake_latency.record(waited);
            }
        }
        self.sleep_at_assert &= !(1 << v);
        self.last_dispatch = Some((v, waited));
        Some(v)
    }
}

/// The assembled Mica2 board.
pub struct Mica2Board {
    cpu: Cpu,
    bus: MicaBus,
    now: Cycles,
    probes: Vec<Probe>,
    rx_schedule: VecDeque<(Cycles, Vec<u8>)>,
    sent: Vec<(Cycles, Vec<u8>)>,
    adc_source: Box<dyn FnMut(Cycles) -> u8 + Send>,
    mode_cycles: [u64; 3],
    adc_conversions: u64,
    exec_trace_cap: usize,
    exec_trace: VecDeque<(u64, u16)>,
    trace: TraceBuffer,
    sent_total: u64,
    predecoded: Predecoded,
    use_predecode: bool,
}

impl std::fmt::Debug for Mica2Board {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mica2Board")
            .field("now", &self.now)
            .field("pc", &self.cpu.pc)
            .field("sleeping", &self.cpu.sleeping())
            .finish_non_exhaustive()
    }
}

impl Mica2Board {
    /// A board with the given program image and ADC signal source.
    pub fn new(image: &Image, adc_source: Box<dyn FnMut(Cycles) -> u8 + Send>) -> Mica2Board {
        let mut bus = MicaBus::new();
        for seg in image.segments() {
            assert!(
                seg.origin % 2 == 0 && seg.data.len() % 2 == 0,
                "program segments must be word-aligned"
            );
            for (i, pair) in seg.data.chunks(2).enumerate() {
                bus.program[seg.origin as usize / 2 + i] = u16::from_le_bytes([pair[0], pair[1]]);
            }
        }
        // Flash fetches are side-effect free on this board, so the
        // whole image predecodes once; the step loop is a table lookup.
        let predecoded = Predecoded::from_words(&bus.program);
        Mica2Board {
            cpu: Cpu::new(),
            bus,
            now: Cycles::ZERO,
            probes: Vec::new(),
            rx_schedule: VecDeque::new(),
            sent: Vec::new(),
            adc_source,
            mode_cycles: [0; 3],
            adc_conversions: 0,
            exec_trace_cap: 0,
            exec_trace: VecDeque::new(),
            trace: TraceBuffer::new(65_536),
            sent_total: 0,
            predecoded,
            use_predecode: true,
        }
    }

    /// Select between predecoded-table stepping (default) and the
    /// legacy fetch-and-decode-per-instruction path. The two are
    /// bit-identical (pinned by the determinism suite); the toggle
    /// exists so parity tests and benchmarks can compare them.
    pub fn set_predecode(&mut self, on: bool) {
        self.use_predecode = on;
    }

    /// The typed trace buffer (enable to record IRQ, radio, and CPU
    /// sleep/wake events for Perfetto/CSV export).
    pub fn trace(&self) -> &TraceBuffer {
        &self.trace
    }

    /// Mutable trace buffer (enable/disable, set overflow policy).
    pub fn trace_mut(&mut self) -> &mut TraceBuffer {
        &mut self.trace
    }

    /// Enable or disable latency-histogram telemetry (default off; the
    /// probes then cost only a branch).
    pub fn set_telemetry(&mut self, on: bool) {
        self.bus.timing = on;
    }

    /// Assert→dispatch interrupt service latency (cycles).
    pub fn irq_service_latency(&self) -> &Log2Histogram {
        &self.bus.irq_service
    }

    /// Assert→dispatch latency for interrupts that had to wake the CPU
    /// out of sleep (the event-service latency a ULP comparison cares
    /// about).
    pub fn wake_latency(&self) -> &Log2Histogram {
        &self.bus.wake_latency
    }

    /// Snapshot counters and histograms into a deterministic registry.
    pub fn metrics_snapshot(&self) -> Metrics {
        let mut m = Metrics::new();
        m.insert_histogram("irq.service_latency", &self.bus.irq_service);
        m.insert_histogram("mcu.wake_latency", &self.bus.wake_latency);
        let (active, idle, psave) = self.mode_cycles();
        m.counter_add("cpu.active_cycles", active);
        m.counter_add("cpu.idle_sleep_cycles", idle);
        m.counter_add("cpu.power_save_cycles", psave);
        m.counter_add("adc.conversions", self.adc_conversions);
        m.counter_add("radio.sent", self.sent_total);
        for (v, &n) in self.bus.raised_by_vec.iter().enumerate() {
            if n > 0 {
                m.counter_add(&format!("irq.events.{v}"), n);
            }
        }
        m.counter_add("trace.dropped", self.trace.dropped());
        m
    }

    /// Record `IrqAssert` trace events for vectors asserted since the
    /// last drain (always clears the mask so stale bits cannot leak into
    /// a later-enabled trace).
    fn drain_irq_asserts(&mut self) {
        let mut newly = std::mem::take(&mut self.bus.newly);
        if !self.trace.is_enabled() {
            return;
        }
        while newly != 0 {
            let v = newly.trailing_zeros() as u8;
            newly &= newly - 1;
            self.trace
                .record(self.now, "irq", TraceKind::IrqAssert { irq: v });
        }
    }

    /// Enable an execution trace keeping the last `capacity` executed
    /// instructions (Atemu-style debugging). Zero disables tracing.
    pub fn set_exec_trace(&mut self, capacity: usize) {
        self.exec_trace_cap = capacity;
        self.exec_trace.clear();
    }

    /// The recorded (cycle, word PC) execution trace, oldest first.
    pub fn exec_trace(&self) -> impl Iterator<Item = (u64, u16)> + '_ {
        self.exec_trace.iter().copied()
    }

    /// The execution trace as disassembled listing lines.
    pub fn exec_trace_listing(&self) -> Vec<String> {
        self.exec_trace
            .iter()
            .map(|&(cycle, pc)| {
                let w0 = self.bus.program[pc as usize];
                let w1 = self
                    .bus
                    .program
                    .get(pc as usize + 1)
                    .copied()
                    .unwrap_or(0);
                let insn = ulp_mcu8::decode(w0, w1).insn;
                format!("{cycle:>10}  {:04x}: {insn}", pc as u32 * 2)
            })
            .collect()
    }

    /// Register a probe between two image symbols (byte addresses).
    ///
    /// # Panics
    ///
    /// Panics if either symbol is missing or odd; use
    /// [`try_probe_symbols`](Mica2Board::try_probe_symbols) for a
    /// fallible variant.
    pub fn probe_symbols(&mut self, image: &Image, name: &str, start: &str, end: &str) -> ProbeId {
        self.try_probe_symbols(image, name, start, end)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`probe_symbols`](Mica2Board::probe_symbols) with a typed error
    /// instead of a panic, for callers probing images they did not
    /// assemble themselves.
    pub fn try_probe_symbols(
        &mut self,
        image: &Image,
        name: &str,
        start: &str,
        end: &str,
    ) -> Result<ProbeId, ProbeError> {
        let resolve = |sym: &str| -> Result<u16, ProbeError> {
            let v = image
                .symbol(sym)
                .ok_or_else(|| ProbeError::MissingSymbol(sym.to_string()))?;
            if v % 2 != 0 {
                return Err(ProbeError::UnalignedSymbol {
                    symbol: sym.to_string(),
                    addr: v,
                });
            }
            Ok((v / 2) as u16)
        };
        let start = resolve(start)?;
        let end = resolve(end)?;
        self.probes.push(Probe {
            name: name.to_string(),
            start,
            end,
            armed_at: None,
            results: Vec::new(),
        });
        Ok(ProbeId(self.probes.len() - 1))
    }

    /// A registered probe's state.
    pub fn probe(&self, id: ProbeId) -> &Probe {
        &self.probes[id.0]
    }

    /// The CPU (read-only).
    pub fn cpu(&self) -> &Cpu {
        &self.cpu
    }

    /// A RAM byte (data address).
    pub fn ram(&self, addr: u16) -> u8 {
        self.bus.ram_read(addr)
    }

    /// Write a RAM byte (test setup).
    pub fn poke_ram(&mut self, addr: u16, value: u8) {
        self.bus.ram_write(addr, value);
    }

    /// Record a fault injection and its observed disposition into the
    /// board trace (no-ops while the trace is disabled, like every other
    /// probe).
    fn record_fault(&mut self, fault: FaultKind, disposition: FaultDisposition) {
        self.trace
            .record(self.now, "fault", TraceKind::FaultInjected { fault });
        self.trace.record(
            self.now,
            "fault",
            TraceKind::FaultAbsorbed { fault, disposition },
        );
    }

    /// Fault-injection hook: assert interrupt vector `v` with no
    /// hardware cause (an EMI ghost edge). Returns `true` if the ghost
    /// perturbed state (degraded) — `false` means it was absorbed
    /// because the vector was already pending (one-deep AVR flag) or
    /// out of range. Either way the injection is traced.
    pub fn inject_spurious_irq(&mut self, v: u8) -> bool {
        let fault = FaultKind::SpuriousIrq { line: v };
        let degraded = v < 8 && self.bus.pending & (1 << v) == 0;
        if degraded {
            self.bus.raise(v);
        }
        self.record_fault(
            fault,
            if degraded {
                FaultDisposition::Degraded
            } else {
                FaultDisposition::Absorbed
            },
        );
        degraded
    }

    /// Fault-injection hook: lose the pending edge on vector `v` before
    /// the CPU dispatches it. Returns `true` if an edge was actually
    /// pending (degraded); `false` means absorbed (nothing to lose).
    pub fn drop_pending_irq(&mut self, v: u8) -> bool {
        let fault = FaultKind::DroppedIrq { line: v };
        let degraded = v < 8 && self.bus.pending & (1 << v) != 0;
        if degraded {
            self.bus.pending &= !(1 << v);
            self.bus.sleep_at_assert &= !(1 << v);
        }
        self.record_fault(
            fault,
            if degraded {
                FaultDisposition::Degraded
            } else {
                FaultDisposition::Absorbed
            },
        );
        degraded
    }

    /// Fault-injection hook: flip bit `bit & 7` of the RAM byte at data
    /// address `addr`. Returns `true` if a mapped byte was hit
    /// (degraded); addresses outside RAM absorb the upset. The Mica2 has
    /// a single always-on SRAM, so the recorded fault uses bank 0.
    pub fn flip_ram_bit(&mut self, addr: u16, bit: u8) -> bool {
        let fault = FaultKind::SramBitFlip { bank: 0, addr, bit };
        let a = addr.wrapping_sub(RAM_BASE) as usize;
        let degraded = if let Some(slot) = self.bus.ram.get_mut(a) {
            *slot ^= 1 << (bit & 7);
            true
        } else {
            false
        };
        self.record_fault(
            fault,
            if degraded {
                FaultDisposition::Degraded
            } else {
                FaultDisposition::Absorbed
            },
        );
        degraded
    }

    /// The LED latch.
    pub fn led(&self) -> u8 {
        self.bus.led
    }

    /// Schedule a packet delivery at absolute cycle `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is not in the future or the packet exceeds the
    /// receive buffer.
    pub fn schedule_rx(&mut self, at: Cycles, bytes: Vec<u8>) {
        assert!(at > self.now, "rx must be scheduled in the future");
        assert!(bytes.len() <= io::PKT_BUF_LEN as usize, "packet too large");
        let pos = self
            .rx_schedule
            .iter()
            .position(|(t, _)| *t > at)
            .unwrap_or(self.rx_schedule.len());
        self.rx_schedule.insert(pos, (at, bytes));
    }

    /// Drain transmitted packets.
    pub fn take_sent(&mut self) -> Vec<(Cycles, Vec<u8>)> {
        std::mem::take(&mut self.sent)
    }

    /// Cycles spent (active, idle-sleep, power-save).
    pub fn mode_cycles(&self) -> (u64, u64, u64) {
        (
            self.mode_cycles[0],
            self.mode_cycles[1],
            self.mode_cycles[2],
        )
    }

    /// ADC conversions completed.
    pub fn adc_conversions(&self) -> u64 {
        self.adc_conversions
    }

    /// Whether the CPU executed `BREAK` or an invalid opcode.
    pub fn halted(&self) -> bool {
        self.cpu.halted()
    }

    fn deliver_due_rx(&mut self) {
        while let Some((at, _)) = self.rx_schedule.front() {
            if *at > self.now {
                break;
            }
            let (_, bytes) = self.rx_schedule.pop_front().expect("checked front");
            for (i, b) in bytes.iter().enumerate() {
                self.bus.ram_write(io::RXBUF + i as u16, *b);
            }
            self.bus.radio_rxlen = bytes.len() as u8;
            self.bus.raise(io::vectors::RADIO_RX);
            self.trace
                .record(self.now, "radio", TraceKind::RadioRxDelivered);
        }
    }

    fn advance_peripherals(&mut self, cycles: u64) {
        // Tick timer.
        if self.bus.timer.enabled {
            self.bus.timer.counter += cycles;
            let period = self.bus.timer.period();
            while self.bus.timer.counter >= period {
                self.bus.timer.counter -= period;
                if self.bus.timer.irq_en {
                    self.bus.raise(io::vectors::TIMER);
                }
            }
        }
        // ADC conversion.
        if let Some(rem) = self.bus.adc_busy {
            if rem <= cycles {
                self.bus.adc_busy = None;
                self.bus.adc_data = (self.adc_source)(self.now);
                self.adc_conversions += 1;
                self.bus.raise(io::vectors::ADC);
            } else {
                self.bus.adc_busy = Some(rem - cycles);
            }
        }
        // Radio send-done.
        if let Some(rem) = self.bus.senddone_in {
            if rem <= cycles {
                self.bus.senddone_in = None;
                self.bus.raise(io::vectors::RADIO_SENDDONE);
            } else {
                self.bus.senddone_in = Some(rem - cycles);
            }
        }
    }

    fn mode(&self) -> CpuMode {
        if !self.cpu.sleeping() {
            CpuMode::Active
        } else if self.bus.power_ctrl == 1 {
            CpuMode::PowerSave
        } else {
            CpuMode::IdleSleep
        }
    }

    fn charge_mode(&mut self, cycles: u64, mode: CpuMode) {
        let idx = match mode {
            CpuMode::Active => 0,
            CpuMode::IdleSleep => 1,
            CpuMode::PowerSave => 2,
        };
        self.mode_cycles[idx] += cycles;
    }
}

impl Simulatable for Mica2Board {
    fn now(&self) -> Cycles {
        self.now
    }

    /// One step = one instruction (or one sleep/interrupt cycle); the
    /// clock advances by the instruction's cycle count.
    fn step(&mut self) -> StepOutcome {
        if self.cpu.halted() {
            return StepOutcome::Halted;
        }
        self.bus.now = self.now.0;
        self.bus.cpu_sleeping = self.cpu.sleeping();
        self.deliver_due_rx();
        self.drain_irq_asserts();

        // Probe watchpoints observe the PC between instructions.
        let pc = self.cpu.pc;
        let now = self.now.0;
        for p in &mut self.probes {
            if p.armed_at.is_none() && pc == p.start {
                p.armed_at = Some(now);
            } else if let Some(t0) = p.armed_at {
                if pc == p.end {
                    p.results.push(now - t0);
                    p.armed_at = None;
                }
            }
        }

        if self.exec_trace_cap > 0 && !self.cpu.sleeping() {
            if self.exec_trace.len() == self.exec_trace_cap {
                self.exec_trace.pop_front();
            }
            self.exec_trace.push_back((self.now.0, self.cpu.pc));
        }
        let mode_before = self.mode();
        let was_sleeping = self.cpu.sleeping();
        let cycles = if self.use_predecode {
            self.cpu.step_predecoded(&mut self.bus, &self.predecoded) as u64
        } else {
            self.cpu.step(&mut self.bus) as u64
        };
        let cycles = cycles.max(1);
        self.now += Cycles(cycles);
        self.bus.now = self.now.0;
        self.bus.cpu_sleeping = self.cpu.sleeping();
        self.charge_mode(cycles, mode_before);
        self.advance_peripherals(cycles);
        self.drain_irq_asserts();

        // Typed dispatch / sleep-edge trace events.
        if let Some((v, waited)) = self.bus.last_dispatch.take() {
            self.trace
                .record(self.now, "irq", TraceKind::IrqDispatch { irq: v, waited });
            if was_sleeping {
                // Vector v's jmp slot sits at word 2v = byte address 4v.
                self.trace.record(
                    self.now,
                    "mcu",
                    TraceKind::McuWake {
                        handler: v as u16 * 4,
                        cause: v,
                    },
                );
            }
        }
        if !was_sleeping && self.cpu.sleeping() {
            self.trace.record(self.now, "mcu", TraceKind::McuSleep);
        }

        // Capture any transmission initiated by this instruction.
        if let Some(pkt) = self.bus.tx_capture.take() {
            self.trace.record(
                self.now,
                "radio",
                TraceKind::RadioTxDone {
                    len: pkt.len() as u8,
                },
            );
            self.sent_total += 1;
            self.sent.push((self.now, pkt));
        }

        if self.cpu.halted() {
            StepOutcome::Halted
        } else if self.cpu.sleeping() && self.bus.pending == 0 {
            StepOutcome::Idle
        } else {
            StepOutcome::Busy
        }
    }

    fn next_wakeup(&self) -> Option<Cycles> {
        let mut best: Option<u64> = None;
        let mut consider = |c: Option<u64>| {
            if let Some(c) = c {
                best = Some(best.map_or(c, |b| b.min(c)));
            }
        };
        consider(self.bus.timer.cycles_to_fire());
        consider(self.bus.adc_busy);
        consider(self.bus.senddone_in);
        consider(
            self.rx_schedule
                .front()
                .map(|(at, _)| at.0.saturating_sub(self.now.0)),
        );
        best.map(|d| Cycles(self.now.0 + d.saturating_sub(1).max(1)))
    }

    fn skip_to(&mut self, target: Cycles) {
        debug_assert!(target > self.now);
        let span = (target - self.now).0;
        let mode = self.mode();
        self.charge_mode(span, mode);
        // Advance peripherals without crossing an event (the engine skips
        // to just before the next wakeup; advance_peripherals handles an
        // exact landing too). Asserts raised exactly at the landing carry
        // the post-skip timestamp.
        self.bus.now = target.0;
        self.bus.cpu_sleeping = self.cpu.sleeping();
        self.advance_peripherals(span);
        self.now = target;
        self.drain_irq_asserts();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ulp_mcu8::assemble;
    use ulp_sim::Engine;

    fn board(src: &str) -> Mica2Board {
        let img = assemble(src).unwrap();
        Mica2Board::new(&img, Box::new(|_| 123))
    }

    fn run_to_halt(b: &mut Mica2Board, max: u64) {
        let mut engine_steps = 0;
        while !b.halted() {
            b.step();
            engine_steps += 1;
            assert!(engine_steps < max, "program did not halt");
        }
    }

    #[test]
    fn program_runs_and_halts() {
        let mut b = board("ldi r16, 7\nsts 0x0300, r16\nbreak");
        run_to_halt(&mut b, 100);
        assert_eq!(b.ram(0x0300), 7);
        assert!(b.now().0 >= 3);
    }

    #[test]
    fn tick_timer_fires_interrupt() {
        // Vector table: reset → main; timer vector increments r20 count
        // in RAM.
        let src = r#"
            .org 0
            jmp main
            jmp tick            ; vector 1 at word 2
        main:
            ldi r16, 0xFF       ; SP init
            out 0x3D, r16
            ldi r16, 0x10
            out 0x3E, r16
            ldi r16, 9          ; compare: tick = 32×10 = 320 cycles
            out 0x12, r16
            ldi r16, 3          ; enable | irq
            out 0x11, r16
            sei
        loop:
            sleep
            rjmp loop
        tick:
            push r16
            lds r16, 0x0310
            inc r16
            sts 0x0310, r16
            pop r16
            reti
        "#;
        let b = board(src);
        let mut engine = Engine::new(b);
        engine.run_until_cycle(Cycles(3300));
        let b = engine.machine();
        // ~3300 cycles / 320 per tick ≈ 10 ticks (setup costs a few).
        let ticks = b.ram(0x0310);
        assert!((9..=10).contains(&ticks), "got {ticks} ticks");
    }

    #[test]
    fn idle_skip_matches_full_stepping() {
        let src = r#"
            .org 0
            jmp main
            jmp tick
        main:
            ldi r16, 0xFF
            out 0x3D, r16
            ldi r16, 0x10
            out 0x3E, r16
            ldi r16, 99
            out 0x12, r16
            ldi r16, 3
            out 0x11, r16
            sei
        loop:
            sleep
            rjmp loop
        tick:
            push r16
            lds r16, 0x0310
            inc r16
            sts 0x0310, r16
            pop r16
            reti
        "#;
        let run = |ff: bool| {
            let b = board(src);
            let mut e = Engine::new(b);
            e.set_fast_forward(ff);
            e.run_until_cycle(Cycles(50_000));
            let m = e.into_machine();
            (m.ram(0x0310), m.mode_cycles())
        };
        let (ticks_fast, modes_fast) = run(true);
        let (ticks_slow, modes_slow) = run(false);
        assert_eq!(ticks_fast, ticks_slow);
        assert_eq!(modes_fast.0, modes_slow.0, "active cycles must match");
        // Sleep cycles may differ by the step granularity of sleeping.
        let total_fast = modes_fast.0 + modes_fast.1 + modes_fast.2;
        let total_slow = modes_slow.0 + modes_slow.1 + modes_slow.2;
        assert_eq!(total_fast, total_slow);
    }

    #[test]
    fn adc_interrupt_delivers_sample() {
        let src = r#"
            .org 0
            jmp main
            nop
            nop
            jmp adc_done        ; vector 2 at word 4
        main:
            ldi r16, 0xFF
            out 0x3D, r16
            ldi r16, 0x10
            out 0x3E, r16
            sei
            ldi r16, 1
            out 0x14, r16       ; start conversion
        loop:
            sleep
            rjmp loop
        adc_done:
            in r16, 0x15
            sts 0x0320, r16
            reti
        "#;
        let mut e = Engine::new(board(src));
        e.run_until_cycle(Cycles(1_000));
        assert_eq!(e.machine().ram(0x0320), 123);
        assert_eq!(e.machine().adc_conversions(), 1);
    }

    #[test]
    fn radio_send_captures_packet() {
        let src = r#"
            ldi r26, 0x00       ; X = TXBUF
            ldi r27, 0x02
            ldi r16, 0xAA
            st X+, r16
            ldi r16, 0xBB
            st X+, r16
            ldi r16, 2
            out 0x16, r16       ; send 2 bytes
            break
        "#;
        let mut b = board(src);
        run_to_halt(&mut b, 100);
        let sent = b.take_sent();
        assert_eq!(sent.len(), 1);
        assert_eq!(sent[0].1, vec![0xAA, 0xBB]);
    }

    #[test]
    fn rx_injection_raises_interrupt() {
        let src = r#"
            .org 0
            jmp main
            nop
            nop
            nop
            nop
            jmp rx              ; vector 3 at word 6
        main:
            ldi r16, 0xFF
            out 0x3D, r16
            ldi r16, 0x10
            out 0x3E, r16
            sei
        loop:
            sleep
            rjmp loop
        rx:
            in r16, 0x17        ; rx length
            sts 0x0330, r16
            lds r16, 0x0240     ; first RXBUF byte
            sts 0x0331, r16
            reti
        "#;
        let mut b = board(src);
        b.schedule_rx(Cycles(500), vec![0x5A, 1, 2]);
        let mut e = Engine::new(b);
        e.run_until_cycle(Cycles(2_000));
        assert_eq!(e.machine().ram(0x0330), 3);
        assert_eq!(e.machine().ram(0x0331), 0x5A);
    }

    #[test]
    fn probes_measure_segments() {
        let src = r#"
        seg_start:
            ldi r16, 10         ; 1 cycle
        spin:
            dec r16             ; 10 × 1
            brne spin           ; 9×2 + 1
        seg_end:
            break
        "#;
        let img = assemble(src).unwrap();
        let mut b = Mica2Board::new(&img, Box::new(|_| 0));
        let p = b.probe_symbols(&img, "loop10", "seg_start", "seg_end");
        run_to_halt(&mut b, 200);
        assert_eq!(b.probe(p).results(), &[30]);
        assert_eq!(b.probe(p).name, "loop10");
        assert_eq!(b.probe(p).first(), Some(30));
    }

    #[test]
    fn exec_trace_records_and_disassembles() {
        let mut b = board("ldi r16, 7\nsts 0x0300, r16\nbreak");
        b.set_exec_trace(8);
        run_to_halt(&mut b, 100);
        let pcs: Vec<u16> = b.exec_trace().map(|(_, pc)| pc).collect();
        assert_eq!(pcs, vec![0, 1, 3], "ldi at 0, sts at 1 (two words), break at 3");
        let listing = b.exec_trace_listing();
        assert!(listing[0].contains("ldi r16, 7"), "{}", listing[0]);
        assert!(listing[1].contains("sts 0x0300, r16"));
        assert!(listing[2].contains("break"));
        // Capacity bound: re-run with a tiny buffer.
        let mut b = board("ldi r16, 7\nsts 0x0300, r16\nbreak");
        b.set_exec_trace(2);
        run_to_halt(&mut b, 100);
        assert_eq!(b.exec_trace().count(), 2, "ring buffer evicts oldest");
    }

    #[test]
    fn telemetry_measures_wakeups_from_sleep() {
        let src = r#"
            .org 0
            jmp main
            jmp tick
        main:
            ldi r16, 0xFF
            out 0x3D, r16
            ldi r16, 0x10
            out 0x3E, r16
            ldi r16, 9
            out 0x12, r16
            ldi r16, 3
            out 0x11, r16
            sei
        loop:
            sleep
            rjmp loop
        tick:
            reti
        "#;
        let mut b = board(src);
        b.set_telemetry(true);
        b.trace_mut().set_enabled(true);
        let mut e = Engine::new(b);
        e.run_until_cycle(Cycles(3_300));
        let b = e.machine();
        assert!(
            !b.irq_service_latency().is_empty(),
            "timer ticks must be serviced"
        );
        assert!(
            !b.wake_latency().is_empty(),
            "ticks arrive while the CPU sleeps"
        );
        // Sleeping CPU services the tick quickly.
        assert!(b.wake_latency().max().unwrap() < 64);
        let m = b.metrics_snapshot();
        assert!(m.counter("irq.events.1").unwrap() > 0, "timer is vector 1");
        assert!(m.histogram("mcu.wake_latency").unwrap().count() > 0);
        // Typed events landed in the trace.
        use ulp_sim::TraceKind;
        assert!(b
            .trace()
            .events()
            .any(|ev| matches!(ev.kind, TraceKind::IrqAssert { irq: 1 })));
        assert!(b
            .trace()
            .events()
            .any(|ev| matches!(ev.kind, TraceKind::McuWake { cause: 1, .. })));
        assert!(b
            .trace()
            .events()
            .any(|ev| matches!(ev.kind, TraceKind::McuSleep)));
    }

    #[test]
    fn telemetry_off_by_default() {
        let mut b = board("ldi r16, 7\nsts 0x0300, r16\nbreak");
        run_to_halt(&mut b, 100);
        assert!(b.irq_service_latency().is_empty());
        assert!(b.wake_latency().is_empty());
        assert!(b.trace().is_empty());
    }

    #[test]
    fn fault_hooks_trace_injection_and_disposition() {
        use ulp_sim::fault::{FaultDisposition, FaultKind};
        let mut b = board("ldi r16, 7\nsts 0x0300, r16\nbreak");
        b.trace_mut().set_enabled(true);
        // RAM upset on a mapped byte: degraded, observable via ram().
        b.poke_ram(0x0300, 0x0F);
        assert!(b.flip_ram_bit(0x0300, 7));
        assert_eq!(b.ram(0x0300), 0x8F);
        // Below RAM_BASE: absorbed (no mapped byte to corrupt).
        assert!(!b.flip_ram_bit(0x0010, 0));
        // Ghost edge on a clear vector: degraded; repeat is absorbed
        // (one-deep flag); out-of-range is absorbed.
        assert!(b.inject_spurious_irq(2));
        assert!(!b.inject_spurious_irq(2));
        assert!(!b.inject_spurious_irq(9));
        // Lose the ghost edge again: degraded once, then absorbed.
        assert!(b.drop_pending_irq(2));
        assert!(!b.drop_pending_irq(2));
        let events: Vec<_> = b.trace().events().map(|e| e.kind.clone()).collect();
        let injected = events
            .iter()
            .filter(|k| matches!(k, TraceKind::FaultInjected { .. }))
            .count();
        assert_eq!(injected, 7, "every injection traced");
        assert!(events.contains(&TraceKind::FaultAbsorbed {
            fault: FaultKind::SramBitFlip {
                bank: 0,
                addr: 0x0300,
                bit: 7
            },
            disposition: FaultDisposition::Degraded,
        }));
        assert!(events.contains(&TraceKind::FaultAbsorbed {
            fault: FaultKind::SpuriousIrq { line: 9 },
            disposition: FaultDisposition::Absorbed,
        }));
    }

    #[test]
    fn dropped_irq_fault_really_suppresses_dispatch() {
        // A ghost edge asserted while the CPU sleeps, then lost before
        // the next step: the handler never runs. Without the drop, the
        // very same edge wakes the CPU and runs the handler once.
        let src = r#"
            .org 0
            jmp main
            jmp tick
        main:
            ldi r16, 0xFF
            out 0x3D, r16
            ldi r16, 0x10
            out 0x3E, r16
            sei
        loop:
            sleep
            rjmp loop
        tick:
            lds r16, 0x0310
            inc r16
            sts 0x0310, r16
            reti
        "#;
        let run = |drop_it: bool| {
            let b = board(src);
            let mut e = Engine::new(b);
            e.run_until_cycle(Cycles(100)); // CPU is asleep by now
            assert!(e.machine().cpu().sleeping());
            assert!(e.machine_mut().inject_spurious_irq(1));
            if drop_it {
                assert!(e.machine_mut().drop_pending_irq(1));
            }
            e.run_until_cycle(Cycles(400));
            e.into_machine().ram(0x0310)
        };
        assert_eq!(run(false), 1, "undropped edge wakes and dispatches");
        assert_eq!(run(true), 0, "dropped edge never dispatches");
    }

    #[test]
    fn power_save_mode_accounted() {
        let src = r#"
            ldi r16, 1
            out 0x18, r16       ; power-save
            sleep
            break
        "#;
        let mut b = board(src);
        for _ in 0..10 {
            b.step();
        }
        let (_active, idle, psave) = b.mode_cycles();
        assert_eq!(idle, 0);
        assert!(psave > 0, "sleeping cycles in power-save");
    }
}
