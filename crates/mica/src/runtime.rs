//! A miniature TinyOS-style runtime in AVR assembly.
//!
//! TinyOS structures a sensor-node application as event handlers (interrupt
//! context) that *post* tasks into a FIFO run-to-completion queue drained
//! by a scheduler that sleeps when empty. This module generates exactly
//! that structure for the Mica2 board model:
//!
//! * a FIFO **task queue** (16 entries) with an atomic `post_task`;
//! * a **scheduler** loop with sleep-on-empty;
//! * **software timer virtualisation**: the hardware tick interrupt walks
//!   an array of soft-timer slots, decrementing and posting expiry tasks —
//!   the per-tick cost TinyOS pays for having only a couple of hardware
//!   timers (and the overhead the paper's hardware timer subsystem
//!   eliminates, §4.2.2);
//! * an **active-message layer** that builds the same 802.15.4 wire
//!   format as the message processor (so cross-platform tests decode both
//!   with `ulp_net::Frame`), with a software CRC in the "radio stack"
//!   portion that the paper's measurements exclude;
//! * a **receive dispatcher** with duplicate suppression in software (the
//!   linear table search the message processor's CAM replaces).
//!
//! Applications plug in as assembly fragments via [`RuntimeBuilder`];
//! well-known labels (`isr_tick`, `am_handoff`, ...) serve as probe
//! anchors for Table 4 measurements.

use crate::io;
use ulp_isa::asm::{AsmError, Image};
use ulp_mcu8::assemble;

/// RAM layout (data addresses) used by the runtime.
pub mod layout {
    /// Task queue: 16 × 2-byte function word-addresses.
    pub const TASKQ: u16 = 0x0100;
    /// Queue head index.
    pub const Q_HEAD: u16 = 0x0120;
    /// Queue tail index.
    pub const Q_TAIL: u16 = 0x0121;
    /// 16-bit tick counter.
    pub const TICK: u16 = 0x0122;
    /// Soft-timer slots: 8 × 6 bytes (count, reload, task — all 16-bit).
    pub const TIMERS: u16 = 0x0130;
    /// Bytes per soft-timer slot.
    pub const TIMER_SLOT: u16 = 6;
    /// Latest ADC sample.
    pub const ADC_VALUE: u16 = 0x0170;
    /// AM sequence number.
    pub const SEQ: u16 = 0x0172;
    /// Staged outgoing MAC length (header + payload + FCS).
    pub const TX_LEN: u16 = 0x0173;
    /// Application variable area (sample period, threshold, ...).
    pub const APP_VARS: u16 = 0x0180;
    /// Duplicate-suppression table: 8 × 3 bytes (src lo, src hi, seq).
    pub const SEEN: u16 = 0x0280;
    /// Next eviction slot in the seen table.
    pub const SEEN_IDX: u16 = 0x0298;
    /// Payload staging area for `am_send`.
    pub const SCRATCH: u16 = 0x02C0;
    /// Top of stack.
    pub const STACK_TOP: u16 = 0x10FF;
    /// Number of soft-timer slots the tick walks.
    pub const NUM_TIMERS: usize = 8;
    /// Seen-table entries.
    pub const SEEN_ENTRIES: usize = 8;
}

/// Builds a complete AVR program: runtime plus application fragments.
#[derive(Debug, Clone)]
pub struct RuntimeBuilder {
    local_addr: u16,
    pan: u16,
    dest: u16,
    tick_compare: u8,
    app_init: String,
    app_code: String,
    handles_rx: bool,
}

impl RuntimeBuilder {
    /// A runtime for a node with the given short address.
    pub fn new(local_addr: u16) -> RuntimeBuilder {
        RuntimeBuilder {
            local_addr,
            pan: 0x0022,
            dest: 0x0000,
            tick_compare: 229, // 32 × 230 = 7360 cycles ≈ 1 ms at 7.37 MHz
            app_init: String::new(),
            app_code: String::new(),
            handles_rx: false,
        }
    }

    /// Set PAN id and default destination.
    pub fn addressing(mut self, pan: u16, dest: u16) -> RuntimeBuilder {
        self.pan = pan;
        self.dest = dest;
        self
    }

    /// Set the hardware tick compare value (tick period =
    /// `32 × (compare + 1)` CPU cycles).
    pub fn tick_compare(mut self, compare: u8) -> RuntimeBuilder {
        self.tick_compare = compare;
        self
    }

    /// Assembly run once at boot, after runtime initialisation and
    /// before interrupts are enabled. Use it to configure soft timers
    /// and application variables.
    pub fn app_init(mut self, asm: impl Into<String>) -> RuntimeBuilder {
        self.app_init = asm.into();
        self
    }

    /// Application tasks and handlers (appended after the runtime).
    pub fn app_code(mut self, asm: impl Into<String>) -> RuntimeBuilder {
        self.app_code = asm.into();
        self
    }

    /// Enable the receive path. The application code must then define
    /// `app_rx_irregular` (command frames and data addressed to this
    /// node). Forwardable data frames are handled by the built-in
    /// `lib_forward` with software duplicate suppression.
    pub fn handles_rx(mut self, yes: bool) -> RuntimeBuilder {
        self.handles_rx = yes;
        self
    }

    /// Generate the complete assembly source.
    pub fn source(&self) -> String {
        let mut src = String::new();
        // ---- constants ---------------------------------------------------
        src.push_str(&format!(
            r#"
; ============================================================
; Miniature TinyOS-style runtime (generated by RuntimeBuilder)
; ============================================================
.equ IO_LED, {led}
.equ IO_TIMER_CTRL, {tctrl}
.equ IO_TIMER_COMPARE, {tcmp}
.equ IO_ADC_CTRL, {adcc}
.equ IO_ADC_DATA, {adcd}
.equ IO_RADIO_SEND, {rsend}
.equ IO_RADIO_RXLEN, {rrxlen}
.equ IO_POWER_CTRL, {pwr}
.equ TXBUF, {txbuf}
.equ RXBUF, {rxbuf}
.equ TASKQ, {taskq}
.equ Q_HEAD, {qhead}
.equ Q_TAIL, {qtail}
.equ TICK_LO, {tick}
.equ TICK_HI, {tick} + 1
.equ TIMERS, {timers}
.equ ADC_VALUE, {adcval}
.equ SEQ, {seq}
.equ TX_LEN, {txlen}
.equ APP_VARS, {appvars}
.equ SEEN, {seen}
.equ SEEN_IDX, {seenidx}
.equ SCRATCH, {scratch}
.equ LOCAL_ADDR, {local}
.equ PAN_ID, {pan}
.equ DEST_ADDR, {dest}
.equ NUM_TIMERS, {ntimers}
.equ TICK_COMPARE, {tickcmp}
"#,
            led = io::LED,
            tctrl = io::TIMER_CTRL,
            tcmp = io::TIMER_COMPARE,
            adcc = io::ADC_CTRL,
            adcd = io::ADC_DATA,
            rsend = io::RADIO_SEND,
            rrxlen = io::RADIO_RXLEN,
            pwr = io::POWER_CTRL,
            txbuf = io::TXBUF,
            rxbuf = io::RXBUF,
            taskq = layout::TASKQ,
            qhead = layout::Q_HEAD,
            qtail = layout::Q_TAIL,
            tick = layout::TICK,
            timers = layout::TIMERS,
            adcval = layout::ADC_VALUE,
            seq = layout::SEQ,
            txlen = layout::TX_LEN,
            appvars = layout::APP_VARS,
            seen = layout::SEEN,
            seenidx = layout::SEEN_IDX,
            scratch = layout::SCRATCH,
            local = self.local_addr,
            pan = self.pan,
            dest = self.dest,
            ntimers = layout::NUM_TIMERS,
            tickcmp = self.tick_compare,
        ));

        // ---- vector table -------------------------------------------------
        src.push_str(
            r#"
.org 0
    jmp boot            ; vector 0: reset
    jmp isr_tick        ; vector 1: hardware tick
    jmp isr_adc         ; vector 2: ADC complete
    jmp isr_rx          ; vector 3: packet received
    jmp isr_senddone    ; vector 4: transmission complete
"#,
        );

        // ---- boot ----------------------------------------------------------
        src.push_str(
            r#"
boot:
    ldi r16, 0xFF       ; SP = 0x10FF
    out 0x3D, r16
    ldi r16, 0x10
    out 0x3E, r16
    clr r1              ; the conventional zero register
    ; Zero runtime RAM (0x0100..0x0300).
    ldi r26, 0x00
    ldi r27, 0x01
    ldi r17, 2          ; two 256-byte pages
boot_clr_page:
    ldi r16, 0
boot_clr:
    st X+, r1
    dec r16
    brne boot_clr
    dec r17
    brne boot_clr_page
    ; Hardware tick: compare + enable + interrupt.
    ldi r16, TICK_COMPARE
    out IO_TIMER_COMPARE, r16
    ldi r16, 3
    out IO_TIMER_CTRL, r16
    ; Sleep in power-save, TinyOS HPLPowerManagement style.
    ldi r16, 1
    out IO_POWER_CTRL, r16
app_init:
"#,
        );
        src.push_str(&self.app_init);
        src.push_str(
            r#"
    sei

; ---- scheduler: run-to-completion tasks, sleep on empty ----
scheduler:
    lds r16, Q_HEAD
    lds r17, Q_TAIL
    cp r16, r17
    breq sched_sleep
    ; Z = TASKQ + head*2
    mov r30, r16
    ldi r31, 0
    lsl r30
    subi r30, lo8(-(TASKQ))
    sbci r31, hi8(-(TASKQ))
    ld r18, Z+
    ld r19, Z
    inc r16
    andi r16, 0x0F
    sts Q_HEAD, r16
    movw r30, r18
    icall
    rjmp scheduler
sched_sleep:
    sleep
    rjmp scheduler

; ---- post_task: enqueue Z (function word-address), atomic ----
post_task:
    push r16
    push r17
    push r26
    push r27
    in r16, 0x3F
    cli
    lds r17, Q_TAIL
    mov r26, r17
    ldi r27, 0
    lsl r26
    subi r26, lo8(-(TASKQ))
    sbci r27, hi8(-(TASKQ))
    st X+, r30
    st X, r31
    inc r17
    andi r17, 0x0F
    sts Q_TAIL, r17
    out 0x3F, r16
    pop r27
    pop r26
    pop r17
    pop r16
    ret

; ---- hardware tick: walk the soft-timer slots ----
isr_tick:
    push r16
    in r16, 0x3F
    push r16
    push r17
    push r18
    push r19
    push r26
    push r27
    push r28
    push r29
    push r30
    push r31
    ; tick counter (16-bit)
    lds r16, TICK_LO
    lds r17, TICK_HI
    subi r16, 0xFF      ; +1
    sbci r17, 0xFF
    sts TICK_LO, r16
    sts TICK_HI, r17
    ; walk the soft timers
    ldi r28, lo8(TIMERS)
    ldi r29, hi8(TIMERS)
    ldi r17, NUM_TIMERS
tick_slot:
    ldd r18, Y+0
    ldd r19, Y+1
    mov r16, r18
    or r16, r19
    breq tick_next      ; count 0 = disabled
    subi r18, 1
    sbci r19, 0
    std Y+0, r18
    std Y+1, r19
    mov r16, r18
    or r16, r19
    brne tick_next
    ; expired: reload (0 reload = one-shot) and post the task
    ldd r18, Y+2
    ldd r19, Y+3
    std Y+0, r18
    std Y+1, r19
    ldd r30, Y+4
    ldd r31, Y+5
    rcall post_task
tick_next:
    adiw r28, 6
    dec r17
    brne tick_slot
    pop r31
    pop r30
    pop r29
    pop r28
    pop r27
    pop r26
    pop r19
    pop r18
    pop r17
    pop r16
    out 0x3F, r16
    pop r16
    reti

; ---- ADC completion: latch the sample, post the app's task ----
; The app stores the continuation task word-address in ADC_TASK.
.equ ADC_TASK, APP_VARS + 14
isr_adc:
    push r16
    in r16, 0x3F
    push r16
    push r17
    push r18
    push r19
    push r26
    push r27
    push r30
    push r31
    in r16, IO_ADC_DATA
    sts ADC_VALUE, r16
    lds r30, ADC_TASK
    lds r31, ADC_TASK + 1
    rcall post_task
    pop r31
    pop r30
    pop r27
    pop r26
    pop r19
    pop r18
    pop r17
    pop r16
    out 0x3F, r16
    pop r16
    reti

; ---- send-done: nothing to do in the mini-runtime ----
isr_senddone:
    reti

; ============================================================
; Active-message layer (AMStandard → QueuedSend → radio stack)
; Convention: payload staged at SCRATCH, r20 = payload length.
; ============================================================
am_send:
    rcall am_fill_header
    rcall am_copy_payload
    ; QueuedSend: TinyOS serialises radio access by posting a task
    ; rather than calling the radio directly.
    push r30
    push r31
    ldi r30, lo8(queued_send_task / 2)
    ldi r31, hi8(queued_send_task / 2)
    rcall post_task
    pop r31
    pop r30
    ret
queued_send_task:
am_handoff:             ; PROBE ANCHOR: packet handed to the radio stack
    rcall radio_stack_send
    ret

am_fill_header:
    ldi r26, lo8(TXBUF)
    ldi r27, hi8(TXBUF)
    ldi r16, 0x41       ; FCF: data, intra-PAN, short addressing
    st X+, r16
    ldi r16, 0x88
    st X+, r16
    lds r16, SEQ
    st X+, r16
    inc r16
    sts SEQ, r16
    ldi r16, lo8(PAN_ID)
    st X+, r16
    ldi r16, hi8(PAN_ID)
    st X+, r16
    ldi r16, lo8(DEST_ADDR)
    st X+, r16
    ldi r16, hi8(DEST_ADDR)
    st X+, r16
    ldi r16, lo8(LOCAL_ADDR)
    st X+, r16
    ldi r16, hi8(LOCAL_ADDR)
    st X+, r16
    ret

am_copy_payload:
    ; X continues past the header (left there by am_fill_header).
    ldi r26, lo8(TXBUF + 9)
    ldi r27, hi8(TXBUF + 9)
    ldi r28, lo8(SCRATCH)
    ldi r29, hi8(SCRATCH)
    mov r17, r20
    tst r17
    breq am_copy_done
am_copy_loop:
    ld r16, Y+
    st X+, r16
    dec r17
    brne am_copy_loop
am_copy_done:
    mov r16, r20
    subi r16, -11       ; MAC length = 9 header + payload + 2 FCS
    sts TX_LEN, r16
    ret

; ---- the "radio stack": software CRC + hand to the port ----
; (The paper excludes these cycles from its comparisons; probes end at
; am_handoff, before this routine runs.)
radio_stack_send:
    ldi r26, lo8(TXBUF)
    ldi r27, hi8(TXBUF)
    lds r17, TX_LEN
    subi r17, 2         ; CRC covers header + payload
    rcall crc16
    st X+, r24          ; append FCS, little-endian
    st X+, r25
    lds r16, TX_LEN
    out IO_RADIO_SEND, r16
    ret

; ---- CRC-16 (ITU-T, reflected 0x8408) over r17 bytes at X ----
crc16:
    ldi r24, 0
    ldi r25, 0
crc_byte:
    ld r16, X+
    eor r24, r16
    ldi r18, 8
crc_bit:
    mov r19, r24
    andi r19, 1
    lsr r25
    ror r24
    tst r19
    breq crc_noxor
    ldi r19, 0x84       ; crc ^= 0x8408
    eor r25, r19
    ldi r19, 0x08
    eor r24, r19
crc_noxor:
    dec r18
    brne crc_bit
    dec r17
    brne crc_byte
    ret
"#,
        );

        // ---- receive path --------------------------------------------------
        if self.handles_rx {
            src.push_str(
                r#"
; ---- receive: post the dispatch task ----
isr_rx:
    push r16
    in r16, 0x3F
    push r16
    push r17
    push r18
    push r19
    push r26
    push r27
    push r30
    push r31
    ldi r30, lo8(rx_task / 2)
    ldi r31, hi8(rx_task / 2)
    rcall post_task
    pop r31
    pop r30
    pop r27
    pop r26
    pop r19
    pop r18
    pop r17
    pop r16
    out 0x3F, r16
    pop r16
    reti

; ---- AM dispatch: classify the frame in RXBUF ----
rx_task:
    lds r16, RXBUF      ; FCF low byte; bits 0-2 = frame type
    andi r16, 0x07
    cpi r16, 3          ; MAC command frame → irregular
    breq rx_irregular
    lds r16, RXBUF + 5  ; destination address
    cpi r16, lo8(LOCAL_ADDR)
    brne rx_forward
    lds r16, RXBUF + 6
    cpi r16, hi8(LOCAL_ADDR)
    brne rx_forward
rx_irregular:
    rcall app_rx_irregular
    ret
rx_forward:
    rcall lib_forward
    ret

; ---- forwarding with software duplicate suppression ----
lib_forward:
    ; key: src lo (RXBUF+7), src hi (RXBUF+8), seq (RXBUF+2)
    lds r18, RXBUF + 7
    lds r19, RXBUF + 8
    lds r20, RXBUF + 2
    ; linear search of the seen table
    ldi r28, lo8(SEEN)
    ldi r29, hi8(SEEN)
    ldi r17, 8          ; SEEN_ENTRIES
seen_loop:
    ldd r16, Y+0
    cp r16, r18
    brne seen_next
    ldd r16, Y+1
    cp r16, r19
    brne seen_next
    ldd r16, Y+2
    cp r16, r20
    brne seen_next
    ret                 ; duplicate: drop silently
seen_next:
    adiw r28, 3
    dec r17
    brne seen_loop
    ; record in the eviction slot
    lds r16, SEEN_IDX
    mov r26, r16
    ldi r27, 0
    lsl r26             ; ×3 = ×2 + ×1
    add r26, r16
    adc r27, r1
    subi r26, lo8(-(SEEN))
    sbci r27, hi8(-(SEEN))
    st X+, r18
    st X+, r19
    st X, r20
    inc r16
    andi r16, 0x07
    sts SEEN_IDX, r16
    ; copy RXBUF → TXBUF (whole MAC frame, verbatim)
    in r17, IO_RADIO_RXLEN
    ldi r26, lo8(RXBUF)
    ldi r27, hi8(RXBUF)
    ldi r28, lo8(TXBUF)
    ldi r29, hi8(TXBUF)
fwd_copy:
    ld r16, X+
    st Y+, r16
    dec r17
    brne fwd_copy
fwd_handoff:            ; PROBE ANCHOR: forward handed to the radio stack
    in r16, IO_RADIO_RXLEN
    out IO_RADIO_SEND, r16
    ret
"#,
            );
        } else {
            src.push_str(
                r#"
isr_rx:
    reti
"#,
            );
        }

        // ---- application fragments ----------------------------------------
        src.push_str("\n; ============ application code ============\n");
        src.push_str(&self.app_code);
        src.push('\n');
        src
    }

    /// Assemble the runtime + application into an image.
    ///
    /// # Errors
    ///
    /// Returns the first assembly error (line numbers refer to the
    /// generated source; see [`source`](Self::source)).
    pub fn build(&self) -> Result<Image, AsmError> {
        assemble(&self.source())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::board::Mica2Board;
    use ulp_net::Frame;
    use ulp_sim::{Cycles, Engine, Simulatable};

    /// App: every tick (soft timer period 1), sample the ADC; on the
    /// sample, stage it as a 1-byte payload and send.
    fn sampling_app() -> RuntimeBuilder {
        RuntimeBuilder::new(0x0005)
            .addressing(0x0022, 0x0000)
            .app_init(
                r#"
    ; soft timer 0: period 1 tick, repeating, task = sample_task
    ldi r16, 1
    sts TIMERS + 0, r16     ; count lo
    sts TIMERS + 2, r16     ; reload lo
    ldi r16, 0
    sts TIMERS + 1, r16
    sts TIMERS + 3, r16
    ldi r16, lo8(sample_task / 2)
    sts TIMERS + 4, r16
    ldi r16, hi8(sample_task / 2)
    sts TIMERS + 5, r16
    ; ADC continuation
    ldi r16, lo8(send_task / 2)
    sts ADC_TASK, r16
    ldi r16, hi8(send_task / 2)
    sts ADC_TASK + 1, r16
"#,
            )
            .app_code(
                r#"
sample_task:
    ldi r16, 1
    out IO_ADC_CTRL, r16
    ret
send_task:
    lds r16, ADC_VALUE
    sts SCRATCH, r16
    ldi r20, 1
    rcall am_send
send_done:
    ret
"#,
            )
    }

    #[test]
    fn runtime_assembles() {
        let img = sampling_app().build().expect("runtime must assemble");
        assert!(img.byte_len() > 400, "non-trivial code size");
        assert!(img.symbol("scheduler").is_some());
        assert!(img.symbol("am_handoff").is_some());
    }

    #[test]
    fn sampling_app_sends_decodable_frames() {
        let img = sampling_app().build().unwrap();
        let mut board = Mica2Board::new(&img, Box::new(|_| 77));
        let mut engine = Engine::new(board);
        engine.run_until_cycle(Cycles(80_000)); // ~10 ticks
        board = engine.into_machine();
        assert!(!board.halted(), "runtime must not halt");
        let sent = board.take_sent();
        assert!(sent.len() >= 5, "got {} packets", sent.len());
        let frame = Frame::decode(&sent[0].1).expect("valid 802.15.4 frame");
        assert_eq!(frame.payload, vec![77]);
        assert_eq!(frame.src, 0x0005);
        assert_eq!(frame.dest, 0x0000);
        assert_eq!(frame.pan, 0x0022);
        // Sequence numbers advance.
        let f2 = Frame::decode(&sent[1].1).unwrap();
        assert_eq!(f2.seq, frame.seq.wrapping_add(1));
    }

    #[test]
    fn send_path_probe_measures_hundreds_of_cycles() {
        let img = sampling_app().build().unwrap();
        let mut board = Mica2Board::new(&img, Box::new(|_| 1));
        let probe = board.probe_symbols(&img, "send_path", "isr_tick", "am_handoff");
        let mut engine = Engine::new(board);
        engine.run_until_cycle(Cycles(40_000));
        let board = engine.machine();
        let p = board.probe(probe);
        assert!(!p.results().is_empty(), "probe never completed");
        let cycles = p.results()[0];
        assert!(
            (300..4000).contains(&cycles),
            "send path {cycles} cycles; the paper's Mica2 order is ~1522"
        );
    }

    #[test]
    fn forwarding_dedups_in_software() {
        let app = RuntimeBuilder::new(0x0005).handles_rx(true).app_code(
            r#"
app_rx_irregular:
    lds r16, APP_VARS       ; count irregulars
    inc r16
    sts APP_VARS, r16
    ret
"#,
        );
        let img = app.build().unwrap();
        let mut board = Mica2Board::new(&img, Box::new(|_| 0));
        let fwd = Frame::data(0x22, 0x0009, 0x0000, 7, &[1, 2, 3]).unwrap();
        board.schedule_rx(Cycles(20_000), fwd.encode());
        board.schedule_rx(Cycles(60_000), fwd.encode()); // duplicate
        let other = Frame::data(0x22, 0x0009, 0x0000, 8, &[4]).unwrap();
        board.schedule_rx(Cycles(100_000), other.encode());
        let mut engine = Engine::new(board);
        engine.run_until_cycle(Cycles(200_000));
        let mut board = engine.into_machine();
        assert!(!board.halted());
        let sent = board.take_sent();
        assert_eq!(sent.len(), 2, "duplicate must be suppressed");
        assert_eq!(sent[0].1, fwd.encode(), "forwarded verbatim");
        assert_eq!(sent[1].1, other.encode());
    }

    #[test]
    fn irregular_frames_reach_the_app() {
        let app = RuntimeBuilder::new(0x0005).handles_rx(true).app_code(
            r#"
app_rx_irregular:
    lds r16, APP_VARS
    inc r16
    sts APP_VARS, r16
    ret
"#,
        );
        let img = app.build().unwrap();
        let mut board = Mica2Board::new(&img, Box::new(|_| 0));
        // A command frame, and a data frame addressed to this node.
        let cmd = Frame::command(0x22, 0x0009, 0x0005, 1, &[9]).unwrap();
        let tome = Frame::data(0x22, 0x0009, 0x0005, 2, &[8]).unwrap();
        board.schedule_rx(Cycles(20_000), cmd.encode());
        board.schedule_rx(Cycles(60_000), tome.encode());
        let mut engine = Engine::new(board);
        engine.run_until_cycle(Cycles(120_000));
        let mut board = engine.into_machine();
        assert_eq!(board.ram(layout::APP_VARS), 2);
        assert!(board.take_sent().is_empty(), "nothing forwarded");
    }

    #[test]
    fn crc_matches_reference_implementation() {
        // Assemble a tiny harness around the runtime's crc16 and compare
        // against ulp_net::crc16.
        let app = RuntimeBuilder::new(1).app_init(
            r#"
    ; stage "123456789" at TXBUF and call crc16 directly
    ldi r26, lo8(TXBUF)
    ldi r27, hi8(TXBUF)
    ldi r16, '1'
    st X+, r16
    ldi r16, '2'
    st X+, r16
    ldi r16, '3'
    st X+, r16
    ldi r16, '4'
    st X+, r16
    ldi r16, '5'
    st X+, r16
    ldi r16, '6'
    st X+, r16
    ldi r16, '7'
    st X+, r16
    ldi r16, '8'
    st X+, r16
    ldi r16, '9'
    st X+, r16
    ldi r26, lo8(TXBUF)
    ldi r27, hi8(TXBUF)
    ldi r17, 9
    rcall crc16
    sts APP_VARS, r24
    sts APP_VARS + 1, r25
    break
"#,
        );
        let img = app.build().unwrap();
        let mut board = Mica2Board::new(&img, Box::new(|_| 0));
        while !board.halted() {
            board.step();
        }
        let got =
            u16::from_le_bytes([board.ram(layout::APP_VARS), board.ram(layout::APP_VARS + 1)]);
        assert_eq!(got, ulp_net::crc16(b"123456789"));
        assert_eq!(got, 0x2189);
    }

    #[test]
    fn idle_skip_preserves_behaviour() {
        let img = sampling_app().build().unwrap();
        let run = |ff: bool| {
            let board = Mica2Board::new(&img, Box::new(|_| 5));
            let mut e = Engine::new(board);
            e.set_fast_forward(ff);
            e.run_until_cycle(Cycles(100_000));
            let mut b = e.into_machine();
            (b.take_sent().len(), b.mode_cycles().0)
        };
        let (sent_fast, active_fast) = run(true);
        let (sent_slow, active_slow) = run(false);
        assert_eq!(sent_fast, sent_slow);
        assert_eq!(active_fast, active_slow);
    }
}
