//! Mica2 power model: the measured current draws of Table 1 (from the
//! PowerTOSSIM study) and the duty-cycle power comparison of §6.3.

use ulp_sim::{Cycles, Energy, Power, Seconds, Voltage};

/// CPU sleep modes with distinct currents (Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SleepMode {
    /// Idle mode: clocks running, 3.2 mA.
    Idle,
    /// Power-save: 0.110 mA.
    PowerSave,
    /// Power-down: 0.103 mA.
    PowerDown,
}

/// The Mica2 platform's measured currents at 3 V (Table 1), in mA.
#[derive(Debug, Clone)]
pub struct Mica2Power {
    /// Supply voltage (3 V in the paper's measurements).
    pub supply: Voltage,
    /// CPU active: 8.0 mA.
    pub cpu_active_ma: f64,
    /// CPU idle: 3.2 mA.
    pub cpu_idle_ma: f64,
    /// ADC acquisition: 1.0 mA.
    pub adc_acquire_ma: f64,
    /// Extended standby: 0.223 mA.
    pub extended_standby_ma: f64,
    /// Standby: 0.216 mA.
    pub standby_ma: f64,
    /// Power-save: 0.110 mA.
    pub power_save_ma: f64,
    /// Power-down: 0.103 mA.
    pub power_down_ma: f64,
    /// Radio receive: 7.0 mA.
    pub radio_rx_ma: f64,
    /// Radio transmit at −20 dBm: 3.7 mA.
    pub radio_tx_m20dbm_ma: f64,
    /// Radio transmit at −8 dBm: 6.5 mA.
    pub radio_tx_m8dbm_ma: f64,
    /// Radio transmit at 0 dBm: 8.5 mA.
    pub radio_tx_0dbm_ma: f64,
    /// Radio transmit at +10 dBm: 21.5 mA.
    pub radio_tx_10dbm_ma: f64,
    /// Typical sensor board: 0.7 mA.
    pub sensors_ma: f64,
}

impl Mica2Power {
    /// Table 1 as measured at 3 V.
    pub fn table1() -> Mica2Power {
        Mica2Power {
            supply: Voltage::from_volts(3.0),
            cpu_active_ma: 8.0,
            cpu_idle_ma: 3.2,
            adc_acquire_ma: 1.0,
            extended_standby_ma: 0.223,
            standby_ma: 0.216,
            power_save_ma: 0.110,
            power_down_ma: 0.103,
            radio_rx_ma: 7.0,
            radio_tx_m20dbm_ma: 3.7,
            radio_tx_m8dbm_ma: 6.5,
            radio_tx_0dbm_ma: 8.5,
            radio_tx_10dbm_ma: 21.5,
            sensors_ma: 0.7,
        }
    }

    /// CPU active power.
    pub fn cpu_active(&self) -> Power {
        Power::from_current(self.cpu_active_ma, self.supply)
    }

    /// CPU power in the given sleep mode.
    pub fn cpu_sleep(&self, mode: SleepMode) -> Power {
        let ma = match mode {
            SleepMode::Idle => self.cpu_idle_ma,
            SleepMode::PowerSave => self.power_save_ma,
            SleepMode::PowerDown => self.power_down_ma,
        };
        Power::from_current(ma, self.supply)
    }

    /// Average CPU power at a given active-duty fraction, with the given
    /// sleep mode for the remainder — the Atmel comparison model of
    /// §6.3 ("the power numbers for the same work done for both systems,
    /// with the utilization of the Atmel normalized to the event
    /// processor's").
    ///
    /// # Panics
    ///
    /// Panics if `duty` is outside `[0, 1]`.
    pub fn cpu_average(&self, duty: f64, sleep: SleepMode) -> Power {
        assert!((0.0..=1.0).contains(&duty), "duty {duty} out of [0, 1]");
        let active = self.cpu_active().watts();
        let idle = self.cpu_sleep(sleep).watts();
        Power::from_watts(duty * active + (1.0 - duty) * idle)
    }

    /// Energy for a mix of (active, idle-sleep, power-save) cycles at the
    /// Mica2's CPU clock.
    pub fn energy_for_cycles(
        &self,
        active: u64,
        idle: u64,
        power_save: u64,
        clock_hz: f64,
    ) -> Energy {
        let t = |c: u64| Seconds(c as f64 / clock_hz);
        self.cpu_active() * t(active)
            + self.cpu_sleep(SleepMode::Idle) * t(idle)
            + self.cpu_sleep(SleepMode::PowerSave) * t(power_save)
    }

    /// Energy for a board's accounted mode cycles (convenience over
    /// [`energy_for_cycles`](Self::energy_for_cycles)).
    pub fn board_energy(&self, modes: (u64, u64, u64), clock_hz: f64) -> Energy {
        self.energy_for_cycles(modes.0, modes.1, modes.2, clock_hz)
    }

    /// Average board power over `elapsed` total cycles.
    pub fn board_average_power(
        &self,
        modes: (u64, u64, u64),
        elapsed: Cycles,
        clock_hz: f64,
    ) -> Power {
        let e = self.board_energy(modes, clock_hz);
        e.average_over(Seconds(elapsed.0 as f64 / clock_hz))
    }
}

impl Default for Mica2Power {
    fn default() -> Self {
        Mica2Power::table1()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_headline_numbers() {
        let p = Mica2Power::table1();
        assert!((p.cpu_active().watts() - 24e-3).abs() < 1e-9, "8 mA × 3 V");
        assert!((p.cpu_sleep(SleepMode::Idle).watts() - 9.6e-3).abs() < 1e-9);
        assert!((p.cpu_sleep(SleepMode::PowerSave).watts() - 330e-6).abs() < 1e-9);
        assert!((p.cpu_sleep(SleepMode::PowerDown).watts() - 309e-6).abs() < 1e-9);
    }

    #[test]
    fn duty_cycle_average_interpolates() {
        let p = Mica2Power::table1();
        let full = p.cpu_average(1.0, SleepMode::PowerSave);
        let none = p.cpu_average(0.0, SleepMode::PowerSave);
        let half = p.cpu_average(0.5, SleepMode::PowerSave);
        assert_eq!(full, p.cpu_active());
        assert_eq!(none, p.cpu_sleep(SleepMode::PowerSave));
        assert!((half.watts() - (full.watts() + none.watts()) / 2.0).abs() < 1e-12);
    }

    #[test]
    fn atmel_two_orders_of_magnitude_above_2uw() {
        // §6.3: even at very low duty cycles the Atmel's floor (power-
        // save, 330 µW) is "a little over two orders of magnitude" above
        // the proposed system's ~2 µW.
        let p = Mica2Power::table1();
        let floor = p.cpu_average(1e-4, SleepMode::PowerSave);
        let ratio = floor.watts() / 2e-6;
        assert!(
            (100.0..400.0).contains(&ratio),
            "ratio {ratio} should be a bit over two orders of magnitude"
        );
    }

    #[test]
    fn energy_for_cycles_adds_up() {
        let p = Mica2Power::table1();
        let e = p.energy_for_cycles(7_372_800, 0, 0, 7_372_800.0);
        assert!((e.joules() - 24e-3).abs() < 1e-9, "1 s active = 24 mJ");
    }

    #[test]
    #[should_panic(expected = "out of [0, 1]")]
    fn bad_duty_rejected() {
        let _ = Mica2Power::table1().cpu_average(1.5, SleepMode::Idle);
    }
}
