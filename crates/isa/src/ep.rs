//! The event-processor instruction set (Table 2 of the paper).
//!
//! Eight instructions with 3-bit opcodes and variable word counts; each
//! "word" is one byte on the 8-bit data bus. The first word packs the
//! opcode into bits 7–5 and a 5-bit argument into bits 4–0:
//!
//! | Instruction | Words | First-word arg | Following words |
//! |---|---|---|---|
//! | `SWITCHON c`  | 1 | component id | — |
//! | `SWITCHOFF c` | 1 | component id | — |
//! | `READ a`      | 3 | — | addr lo, addr hi |
//! | `WRITE a`     | 3 | — | addr lo, addr hi |
//! | `WRITEI a, v` | 4 | — | addr lo, addr hi, value |
//! | `TRANSFER s, d, n` | 5 | length − 1 | src lo/hi, dst lo/hi |
//! | `TERMINATE`   | 1 | — | — |
//! | `WAKEUP v`    | 2 | — | µC vector index |
//!
//! **Deviation from Table 2**: the paper lists `WRITEI` as three words, but
//! a 16-bit address plus an 8-bit immediate cannot fit in two operand
//! words; we use four and document it in `DESIGN.md`. `TRANSFER` carries
//! its block length (1–32 bytes, matching the message processor's 32-byte
//! buffers) in the first-word argument field.

use crate::asm::{EncodeCtx, Isa, Tok};
use std::fmt;

/// Number of addressable power-controlled components (5-bit id).
pub const MAX_COMPONENTS: u8 = 32;

/// Maximum block length of one `TRANSFER` (32-byte message buffers).
pub const MAX_TRANSFER: u8 = 32;

/// Identifier of a power-controlled component (0–31).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ComponentId(u8);

impl ComponentId {
    /// A component id.
    ///
    /// # Errors
    ///
    /// Returns `None` if `id` is 32 or more (the field is 5 bits).
    pub fn new(id: u8) -> Option<ComponentId> {
        (id < MAX_COMPONENTS).then_some(ComponentId(id))
    }

    /// The raw 5-bit id.
    pub fn raw(self) -> u8 {
        self.0
    }
}

impl fmt::Display for ComponentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "component#{}", self.0)
    }
}

/// The 3-bit opcodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Opcode {
    /// Turn a component on and wait for its ready handshake.
    SwitchOn = 0,
    /// Turn a component off.
    SwitchOff = 1,
    /// Read a bus location into the EP register.
    Read = 2,
    /// Write the EP register to a bus location.
    Write = 3,
    /// Write an immediate to a bus location.
    WriteI = 4,
    /// Transfer a block within the address space.
    Transfer = 5,
    /// End the ISR without waking the microcontroller.
    Terminate = 6,
    /// End the ISR and wake the microcontroller at a vector.
    Wakeup = 7,
}

impl Opcode {
    /// Decode from the top 3 bits of a first instruction word.
    ///
    /// High bits beyond the 3-bit field are silently masked off; callers
    /// that want garbage bits to surface as an error should use
    /// [`Opcode::try_from_bits`] instead (as [`Instruction::decode`]
    /// does).
    pub fn from_bits(bits: u8) -> Opcode {
        Opcode::try_from_bits(bits & 0b111).expect("masked to 3 bits")
    }

    /// Decode from a 3-bit field, rejecting values with garbage high
    /// bits instead of aliasing them onto a valid opcode.
    ///
    /// # Errors
    ///
    /// Returns `None` if `bits` does not fit in 3 bits.
    pub fn try_from_bits(bits: u8) -> Option<Opcode> {
        Some(match bits {
            0 => Opcode::SwitchOn,
            1 => Opcode::SwitchOff,
            2 => Opcode::Read,
            3 => Opcode::Write,
            4 => Opcode::WriteI,
            5 => Opcode::Transfer,
            6 => Opcode::Terminate,
            7 => Opcode::Wakeup,
            _ => return None,
        })
    }

    /// Instruction length in words (bytes) for this opcode.
    pub fn words(self) -> usize {
        match self {
            Opcode::SwitchOn | Opcode::SwitchOff | Opcode::Terminate => 1,
            Opcode::Wakeup => 2,
            Opcode::Read | Opcode::Write => 3,
            Opcode::WriteI => 4,
            Opcode::Transfer => 5,
        }
    }

    /// Canonical lowercase mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            Opcode::SwitchOn => "switchon",
            Opcode::SwitchOff => "switchoff",
            Opcode::Read => "read",
            Opcode::Write => "write",
            Opcode::WriteI => "writei",
            Opcode::Transfer => "transfer",
            Opcode::Terminate => "terminate",
            Opcode::Wakeup => "wakeup",
        }
    }
}

/// A decoded event-processor instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Instruction {
    /// Power a component on (blocks on the ready handshake).
    SwitchOn(ComponentId),
    /// Power a component off.
    SwitchOff(ComponentId),
    /// Load `[addr]` into the EP's single register.
    Read(u16),
    /// Store the EP register to `[addr]`.
    Write(u16),
    /// Store an immediate to `[addr]`.
    WriteI {
        /// Destination bus address.
        addr: u16,
        /// Immediate value.
        value: u8,
    },
    /// Copy `len` bytes from `src` to `dst` (1–32).
    Transfer {
        /// Source bus address of the first byte.
        src: u16,
        /// Destination bus address of the first byte.
        dst: u16,
        /// Block length in bytes (1–32).
        len: u8,
    },
    /// Finish the ISR; EP returns to `READY`.
    Terminate,
    /// Finish the ISR and wake the microcontroller at vector `v`.
    Wakeup(u8),
}

/// Error decoding an instruction from memory bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Fewer bytes available than the opcode's word count.
    Truncated {
        /// The opcode whose operands were missing.
        opcode: Opcode,
        /// Bytes that were available.
        have: usize,
    },
    /// The opcode field carried bits outside the 3-bit encoding.
    BadOpcode {
        /// The raw (unmasked) opcode field value.
        bits: u8,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated { opcode, have } => write!(
                f,
                "truncated {} instruction: need {} words, have {have}",
                opcode.mnemonic(),
                opcode.words()
            ),
            DecodeError::BadOpcode { bits } => {
                write!(f, "opcode field 0b{bits:b} does not fit in 3 bits")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// Error encoding an instruction into bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EncodeError {
    /// A `TRANSFER` block length outside `1..=32` (the field encodes
    /// `len − 1` in 5 bits, and zero-length blocks are meaningless).
    TransferLength {
        /// The rejected length.
        len: u8,
    },
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EncodeError::TransferLength { len } => {
                write!(f, "transfer length {len} out of range 1..={MAX_TRANSFER}")
            }
        }
    }
}

impl std::error::Error for EncodeError {}

impl Instruction {
    /// The instruction's opcode.
    pub fn opcode(&self) -> Opcode {
        match self {
            Instruction::SwitchOn(_) => Opcode::SwitchOn,
            Instruction::SwitchOff(_) => Opcode::SwitchOff,
            Instruction::Read(_) => Opcode::Read,
            Instruction::Write(_) => Opcode::Write,
            Instruction::WriteI { .. } => Opcode::WriteI,
            Instruction::Transfer { .. } => Opcode::Transfer,
            Instruction::Terminate => Opcode::Terminate,
            Instruction::Wakeup(_) => Opcode::Wakeup,
        }
    }

    /// Encoded length in words (= bytes).
    pub fn words(&self) -> usize {
        self.opcode().words()
    }

    /// Whether this instruction ends an ISR (Figure 2: `EXECUTE →
    /// READY` happens only for `WAKEUP` and `TERMINATE`).
    pub fn ends_isr(&self) -> bool {
        matches!(self, Instruction::Terminate | Instruction::Wakeup(_))
    }

    /// The component operand of `SWITCHON`/`SWITCHOFF`, if any.
    pub fn component(&self) -> Option<ComponentId> {
        match *self {
            Instruction::SwitchOn(c) | Instruction::SwitchOff(c) => Some(c),
            _ => None,
        }
    }

    /// The single bus address operand of `READ`/`WRITE`/`WRITEI`, if any
    /// (`TRANSFER` carries two addresses; see
    /// [`Instruction::transfer_args`]).
    pub fn addr(&self) -> Option<u16> {
        match *self {
            Instruction::Read(a) | Instruction::Write(a) => Some(a),
            Instruction::WriteI { addr, .. } => Some(addr),
            _ => None,
        }
    }

    /// The immediate operand of `WRITEI`, if any.
    pub fn immediate(&self) -> Option<u8> {
        match *self {
            Instruction::WriteI { value, .. } => Some(value),
            _ => None,
        }
    }

    /// The `(src, dst, len)` operands of `TRANSFER`, if any.
    pub fn transfer_args(&self) -> Option<(u16, u16, u8)> {
        match *self {
            Instruction::Transfer { src, dst, len } => Some((src, dst, len)),
            _ => None,
        }
    }

    /// The µC vector operand of `WAKEUP`, if any.
    pub fn vector(&self) -> Option<u8> {
        match *self {
            Instruction::Wakeup(v) => Some(v),
            _ => None,
        }
    }

    /// Encode into bytes.
    ///
    /// # Errors
    ///
    /// Returns [`EncodeError::TransferLength`] for a `TRANSFER` whose
    /// block length is outside `1..=32`.
    pub fn encode(&self) -> Result<Vec<u8>, EncodeError> {
        fn head(op: Opcode, arg: u8) -> u8 {
            debug_assert!(arg < 32);
            ((op as u8) << 5) | (arg & 0x1F)
        }
        Ok(match *self {
            Instruction::SwitchOn(c) => vec![head(Opcode::SwitchOn, c.raw())],
            Instruction::SwitchOff(c) => vec![head(Opcode::SwitchOff, c.raw())],
            Instruction::Read(a) => vec![head(Opcode::Read, 0), a as u8, (a >> 8) as u8],
            Instruction::Write(a) => vec![head(Opcode::Write, 0), a as u8, (a >> 8) as u8],
            Instruction::WriteI { addr, value } => vec![
                head(Opcode::WriteI, 0),
                addr as u8,
                (addr >> 8) as u8,
                value,
            ],
            Instruction::Transfer { src, dst, len } => {
                if !(1..=MAX_TRANSFER).contains(&len) {
                    return Err(EncodeError::TransferLength { len });
                }
                vec![
                    head(Opcode::Transfer, len - 1),
                    src as u8,
                    (src >> 8) as u8,
                    dst as u8,
                    (dst >> 8) as u8,
                ]
            }
            Instruction::Terminate => vec![head(Opcode::Terminate, 0)],
            Instruction::Wakeup(v) => vec![head(Opcode::Wakeup, 0), v],
        })
    }

    /// Decode one instruction from the front of `bytes`, returning it and
    /// its length.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::Truncated`] if `bytes` is too short, or
    /// [`DecodeError::BadOpcode`] if the opcode field carries bits
    /// outside the 3-bit encoding (defensive; an in-range first word
    /// always yields a 3-bit field).
    pub fn decode(bytes: &[u8]) -> Result<(Instruction, usize), DecodeError> {
        let first = *bytes.first().ok_or(DecodeError::Truncated {
            opcode: Opcode::Terminate,
            have: 0,
        })?;
        let bits = first >> 5;
        let opcode = Opcode::try_from_bits(bits).ok_or(DecodeError::BadOpcode { bits })?;
        let arg = first & 0x1F;
        let n = opcode.words();
        if bytes.len() < n {
            return Err(DecodeError::Truncated {
                opcode,
                have: bytes.len(),
            });
        }
        let addr16 = |lo: u8, hi: u8| u16::from_le_bytes([lo, hi]);
        let insn = match opcode {
            Opcode::SwitchOn => Instruction::SwitchOn(ComponentId(arg)),
            Opcode::SwitchOff => Instruction::SwitchOff(ComponentId(arg)),
            Opcode::Read => Instruction::Read(addr16(bytes[1], bytes[2])),
            Opcode::Write => Instruction::Write(addr16(bytes[1], bytes[2])),
            Opcode::WriteI => Instruction::WriteI {
                addr: addr16(bytes[1], bytes[2]),
                value: bytes[3],
            },
            Opcode::Transfer => Instruction::Transfer {
                src: addr16(bytes[1], bytes[2]),
                dst: addr16(bytes[3], bytes[4]),
                len: arg + 1,
            },
            Opcode::Terminate => Instruction::Terminate,
            Opcode::Wakeup => Instruction::Wakeup(bytes[1]),
        };
        Ok((insn, n))
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Instruction::SwitchOn(c) => write!(f, "switchon {}", c.raw()),
            Instruction::SwitchOff(c) => write!(f, "switchoff {}", c.raw()),
            Instruction::Read(a) => write!(f, "read 0x{a:04X}"),
            Instruction::Write(a) => write!(f, "write 0x{a:04X}"),
            Instruction::WriteI { addr, value } => write!(f, "writei 0x{addr:04X}, {value}"),
            Instruction::Transfer { src, dst, len } => {
                write!(f, "transfer 0x{src:04X}, 0x{dst:04X}, {len}")
            }
            Instruction::Terminate => write!(f, "terminate"),
            Instruction::Wakeup(v) => write!(f, "wakeup {v}"),
        }
    }
}

/// Encode a sequence of instructions into a contiguous byte program.
///
/// # Errors
///
/// Returns the first [`EncodeError`] produced by any instruction.
pub fn encode_program(program: &[Instruction]) -> Result<Vec<u8>, EncodeError> {
    let mut out = Vec::with_capacity(program.len() * 2);
    for insn in program {
        out.extend(insn.encode()?);
    }
    Ok(out)
}

/// Decode a contiguous byte program until `TERMINATE`/`WAKEUP` or the end.
///
/// # Errors
///
/// Returns an error if a trailing instruction is truncated.
pub fn decode_isr(bytes: &[u8]) -> Result<Vec<Instruction>, DecodeError> {
    let mut out = Vec::new();
    let mut pos = 0;
    while pos < bytes.len() {
        let (insn, n) = Instruction::decode(&bytes[pos..])?;
        pos += n;
        let done = insn.ends_isr();
        out.push(insn);
        if done {
            break;
        }
    }
    Ok(out)
}

/// Structural decode of an ISR image, as produced by
/// [`decode_isr_meta`].
///
/// Unlike [`decode_isr`] this never fails: truncation and trailing
/// bytes are reported as metadata so analyzers can diagnose them with
/// byte offsets instead of aborting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IsrDecode {
    /// Decoded instructions with their byte offset from the ISR start.
    pub insns: Vec<(u16, Instruction)>,
    /// Bytes consumed by the decoded instructions.
    pub consumed: usize,
    /// Whether decoding stopped at a `TERMINATE`/`WAKEUP`.
    pub terminated: bool,
    /// Bytes left in the image after the terminator (unreachable tail),
    /// or after the truncation point if `truncated`.
    pub trailing: usize,
    /// Whether the final instruction's operand words ran off the end of
    /// the image before a terminator was seen.
    pub truncated: bool,
}

/// Decode an ISR image into instructions plus structural metadata.
///
/// Decoding walks from offset 0 and stops at the first
/// `TERMINATE`/`WAKEUP`, at the end of the image, or at a truncated
/// instruction — whichever comes first. The outcome is always a value;
/// see [`IsrDecode`] for how abnormal shapes are reported.
pub fn decode_isr_meta(bytes: &[u8]) -> IsrDecode {
    let mut insns = Vec::new();
    let mut pos = 0usize;
    let mut terminated = false;
    let mut truncated = false;
    while pos < bytes.len() {
        match Instruction::decode(&bytes[pos..]) {
            Ok((insn, n)) => {
                insns.push((pos as u16, insn));
                pos += n;
                if insn.ends_isr() {
                    terminated = true;
                    break;
                }
            }
            Err(_) => {
                truncated = true;
                break;
            }
        }
    }
    IsrDecode {
        insns,
        consumed: pos,
        terminated,
        trailing: bytes.len() - pos,
        truncated,
    }
}

/// The event-processor ISA, pluggable into [`crate::asm::Assembler`].
#[derive(Debug, Clone, Copy, Default)]
pub struct EpIsa;

impl Isa for EpIsa {
    fn size(&self, mnemonic: &str, _operands: &[Vec<Tok>]) -> Result<usize, String> {
        let op = mnemonic_opcode(mnemonic)?;
        Ok(op.words())
    }

    fn encode(
        &self,
        mnemonic: &str,
        operands: &[Vec<Tok>],
        ctx: &EncodeCtx<'_>,
    ) -> Result<Vec<u8>, String> {
        let op = mnemonic_opcode(mnemonic)?;
        let expect = |n: usize| -> Result<(), String> {
            if operands.len() == n {
                Ok(())
            } else {
                Err(format!(
                    "`{mnemonic}` takes {n} operand(s), got {}",
                    operands.len()
                ))
            }
        };
        let eval = |i: usize| ctx.eval(&operands[i]);
        let range = |v: i64, lo: i64, hi: i64, what: &str| -> Result<i64, String> {
            if (lo..=hi).contains(&v) {
                Ok(v)
            } else {
                Err(format!("{what} {v} out of range {lo}..={hi}"))
            }
        };
        let insn = match op {
            Opcode::SwitchOn | Opcode::SwitchOff => {
                expect(1)?;
                let c = range(eval(0)?, 0, 31, "component id")? as u8;
                let c = ComponentId::new(c).expect("range-checked");
                if op == Opcode::SwitchOn {
                    Instruction::SwitchOn(c)
                } else {
                    Instruction::SwitchOff(c)
                }
            }
            Opcode::Read | Opcode::Write => {
                expect(1)?;
                let a = range(eval(0)?, 0, 0xFFFF, "address")? as u16;
                if op == Opcode::Read {
                    Instruction::Read(a)
                } else {
                    Instruction::Write(a)
                }
            }
            Opcode::WriteI => {
                expect(2)?;
                Instruction::WriteI {
                    addr: range(eval(0)?, 0, 0xFFFF, "address")? as u16,
                    value: range(eval(1)?, -128, 255, "immediate")? as u8,
                }
            }
            Opcode::Transfer => {
                expect(3)?;
                Instruction::Transfer {
                    src: range(eval(0)?, 0, 0xFFFF, "source address")? as u16,
                    dst: range(eval(1)?, 0, 0xFFFF, "destination address")? as u16,
                    len: range(eval(2)?, 1, MAX_TRANSFER as i64, "transfer length")? as u8,
                }
            }
            Opcode::Terminate => {
                expect(0)?;
                Instruction::Terminate
            }
            Opcode::Wakeup => {
                expect(1)?;
                Instruction::Wakeup(range(eval(0)?, 0, 255, "vector")? as u8)
            }
        };
        insn.encode().map_err(|e| e.to_string())
    }
}

fn mnemonic_opcode(mnemonic: &str) -> Result<Opcode, String> {
    Ok(match mnemonic {
        "switchon" => Opcode::SwitchOn,
        "switchoff" => Opcode::SwitchOff,
        "read" => Opcode::Read,
        "write" => Opcode::Write,
        "writei" => Opcode::WriteI,
        "transfer" => Opcode::Transfer,
        "terminate" => Opcode::Terminate,
        "wakeup" => Opcode::Wakeup,
        other => return Err(format!("unknown event-processor mnemonic `{other}`")),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Assembler;

    #[test]
    fn word_counts_match_table2() {
        assert_eq!(Opcode::SwitchOn.words(), 1);
        assert_eq!(Opcode::SwitchOff.words(), 1);
        assert_eq!(Opcode::Read.words(), 3);
        assert_eq!(Opcode::Write.words(), 3);
        assert_eq!(Opcode::WriteI.words(), 4); // paper says 3; see DESIGN.md
        assert_eq!(Opcode::Transfer.words(), 5);
        assert_eq!(Opcode::Terminate.words(), 1);
        assert_eq!(Opcode::Wakeup.words(), 2);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let prog = [
            Instruction::SwitchOn(ComponentId::new(4).unwrap()),
            Instruction::Read(0x1401),
            Instruction::SwitchOff(ComponentId::new(4).unwrap()),
            Instruction::Write(0x1210),
            Instruction::WriteI {
                addr: 0x1200,
                value: 1,
            },
            Instruction::Transfer {
                src: 0x1280,
                dst: 0x1340,
                len: 32,
            },
            Instruction::Wakeup(3),
            Instruction::Terminate,
        ];
        let bytes = encode_program(&prog).unwrap();
        let mut pos = 0;
        for want in &prog {
            let (got, n) = Instruction::decode(&bytes[pos..]).unwrap();
            assert_eq!(&got, want);
            assert_eq!(n, want.words());
            pos += n;
        }
        assert_eq!(pos, bytes.len());
    }

    #[test]
    fn decode_isr_stops_at_terminator() {
        let bytes = encode_program(&[
            Instruction::Read(0x10),
            Instruction::Terminate,
            Instruction::Read(0x20), // unreachable tail
        ])
        .unwrap();
        let isr = decode_isr(&bytes).unwrap();
        assert_eq!(isr.len(), 2);
        assert!(isr[1].ends_isr());
    }

    #[test]
    fn truncated_decode_errors() {
        let bytes = encode_program(&[Instruction::Transfer {
            src: 1,
            dst: 2,
            len: 8,
        }])
        .unwrap();
        let err = Instruction::decode(&bytes[..3]).unwrap_err();
        assert!(err.to_string().contains("truncated transfer"));
        assert!(Instruction::decode(&[]).is_err());
    }

    #[test]
    fn component_id_bounds() {
        assert!(ComponentId::new(31).is_some());
        assert!(ComponentId::new(32).is_none());
        assert_eq!(ComponentId::new(7).unwrap().to_string(), "component#7");
    }

    #[test]
    fn zero_length_transfer_is_a_typed_encode_error() {
        let err = Instruction::Transfer {
            src: 0,
            dst: 0,
            len: 0,
        }
        .encode()
        .unwrap_err();
        assert_eq!(err, EncodeError::TransferLength { len: 0 });
        assert_eq!(err.to_string(), "transfer length 0 out of range 1..=32");
        // Over-long blocks are rejected the same way, and the error
        // propagates through `encode_program`.
        let err = encode_program(&[
            Instruction::Terminate,
            Instruction::Transfer {
                src: 0,
                dst: 0,
                len: 33,
            },
        ])
        .unwrap_err();
        assert_eq!(err, EncodeError::TransferLength { len: 33 });
    }

    #[test]
    fn try_from_bits_rejects_garbage_high_bits() {
        // All 3-bit values decode; anything wider is rejected instead of
        // aliasing onto `bits & 0b111`.
        for bits in 0u8..8 {
            let op = Opcode::try_from_bits(bits).expect("3-bit value");
            assert_eq!(op as u8, bits);
            assert_eq!(Opcode::from_bits(bits), op);
        }
        for bits in [0b1000u8, 0b1010, 0x80, 0xFF] {
            assert_eq!(Opcode::try_from_bits(bits), None);
        }
        // `decode` goes through the checked path (defensively — an
        // in-range first word always produces a 3-bit field).
        let err = DecodeError::BadOpcode { bits: 0b1010 };
        assert_eq!(err.to_string(), "opcode field 0b1010 does not fit in 3 bits");
    }

    #[test]
    fn decode_isr_meta_reports_structure() {
        // Normal, terminated ISR with an unreachable tail.
        let bytes = encode_program(&[
            Instruction::Read(0x10),
            Instruction::Terminate,
            Instruction::Read(0x20),
        ])
        .unwrap();
        let meta = decode_isr_meta(&bytes);
        assert_eq!(meta.insns.len(), 2);
        assert_eq!(meta.insns[0].0, 0);
        assert_eq!(meta.insns[1], (3, Instruction::Terminate));
        assert!(meta.terminated);
        assert!(!meta.truncated);
        assert_eq!(meta.consumed, 4);
        assert_eq!(meta.trailing, 3);

        // Truncated final instruction.
        let meta = decode_isr_meta(&bytes[..2]);
        assert!(!meta.terminated);
        assert!(meta.truncated);
        assert_eq!(meta.insns.len(), 0);
        assert_eq!(meta.trailing, 2);

        // Runs off the end without a terminator.
        let open = encode_program(&[Instruction::Read(0x10)]).unwrap();
        let meta = decode_isr_meta(&open);
        assert!(!meta.terminated);
        assert!(!meta.truncated);
        assert_eq!(meta.trailing, 0);
        assert_eq!(meta.consumed, 3);
    }

    #[test]
    fn operand_accessors() {
        let c = ComponentId::new(4).unwrap();
        assert_eq!(Instruction::SwitchOn(c).component(), Some(c));
        assert_eq!(Instruction::SwitchOff(c).component(), Some(c));
        assert_eq!(Instruction::Terminate.component(), None);
        assert_eq!(Instruction::Read(0x1401).addr(), Some(0x1401));
        assert_eq!(Instruction::Write(0x1210).addr(), Some(0x1210));
        let wi = Instruction::WriteI {
            addr: 0x1200,
            value: 9,
        };
        assert_eq!(wi.addr(), Some(0x1200));
        assert_eq!(wi.immediate(), Some(9));
        let t = Instruction::Transfer {
            src: 0x1280,
            dst: 0x1340,
            len: 8,
        };
        assert_eq!(t.addr(), None);
        assert_eq!(t.transfer_args(), Some((0x1280, 0x1340, 8)));
        assert_eq!(Instruction::Wakeup(3).vector(), Some(3));
        assert_eq!(Instruction::Terminate.vector(), None);
    }

    #[test]
    fn assembles_figure5_style_isr() {
        // The sample-and-send ISR of Figure 5.
        let src = r#"
            .equ SENSOR, 4
            .equ MSGPROC, 2
            .equ ADC_DATA, 0x1401
            .equ MSG_DATA, 0x1210
            .equ MSG_CTRL, 0x1200
            .org 0x0200
        isr_timer:
            switchon  SENSOR
            read      ADC_DATA
            switchoff SENSOR
            switchon  MSGPROC
            write     MSG_DATA
            writei    MSG_CTRL, 1
            terminate
        "#;
        let img = Assembler::new(EpIsa).assemble(src).unwrap();
        assert_eq!(img.symbol("isr_timer"), Some(0x0200));
        let isr = decode_isr(&img.segments()[0].data).unwrap();
        assert_eq!(isr.len(), 7);
        assert_eq!(isr[0], Instruction::SwitchOn(ComponentId::new(4).unwrap()));
        assert_eq!(isr[1], Instruction::Read(0x1401));
        assert_eq!(
            isr[5],
            Instruction::WriteI {
                addr: 0x1200,
                value: 1
            }
        );
        assert_eq!(isr[6], Instruction::Terminate);
        // 1+3+1+1+3+4+1 = 14 bytes: the "180-byte memory footprint"
        // claim is plausible at this density.
        assert_eq!(img.byte_len(), 14);
    }

    #[test]
    fn assembler_rejects_bad_operands() {
        let a = Assembler::new(EpIsa);
        assert!(a.assemble("switchon 32").is_err());
        assert!(a.assemble("transfer 0, 1, 0").is_err());
        assert!(a.assemble("transfer 0, 1, 33").is_err());
        assert!(a.assemble("writei 0x10000, 0").is_err());
        assert!(a.assemble("terminate 1").is_err());
        assert!(a.assemble("frobnicate").is_err());
    }

    #[test]
    fn display_roundtrips_through_assembler() {
        let insns = [
            Instruction::SwitchOn(ComponentId::new(3).unwrap()),
            Instruction::Transfer {
                src: 0x1280,
                dst: 0x1340,
                len: 17,
            },
            Instruction::WriteI {
                addr: 0x1200,
                value: 9,
            },
            Instruction::Wakeup(2),
        ];
        let src: String = insns.iter().map(|i| format!("{i}\n")).collect();
        let img = Assembler::new(EpIsa).assemble(&src).unwrap();
        let decoded = decode_isr(&img.segments()[0].data).unwrap();
        assert_eq!(decoded.as_slice(), &insns);
    }
}
