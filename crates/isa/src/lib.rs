#![warn(missing_docs)]
//! Instruction sets and assembler infrastructure for the ulp-node workspace.
//!
//! Two instruction sets are assembled in this workspace: the event
//! processor's eight-instruction ISA (Table 2 of the paper) defined in
//! [`ep`], and the AVR-subset ISA of the microcontroller cores defined in
//! `ulp-mcu8`. Both share the generic two-pass assembler in [`asm`]
//! (lexer, expression evaluator, labels, directives) via the [`asm::Isa`]
//! trait.
//!
//! # Example: assemble an event-processor ISR
//!
//! ```
//! use ulp_isa::asm::Assembler;
//! use ulp_isa::ep::EpIsa;
//!
//! let src = r#"
//!     .equ MSGPROC_CTRL, 0x1200
//!     .org 0x0200
//! isr_timer:
//!     switchon 4          ; power the sensor block
//!     read 0x1401         ; latch the ADC sample into the EP register
//!     switchoff 4
//!     writei MSGPROC_CTRL, 1
//!     terminate
//! "#;
//! let image = Assembler::new(EpIsa).assemble(src)?;
//! assert_eq!(image.symbol("isr_timer"), Some(0x0200));
//! assert!(!image.segments().is_empty());
//! # Ok::<(), ulp_isa::asm::AsmError>(())
//! ```

pub mod asm;
pub mod ep;
