//! Line lexer for assembly source.

/// One lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or mnemonic (`isr_timer`, `switchon`, `r16`, `X`).
    Ident(String),
    /// Integer literal (decimal, `0x`, `0b`, `0o`, or `'c'` character).
    Num(i64),
    /// String literal (for `.db "..."`).
    Str(String),
    /// Punctuation / operator: one of
    /// `( ) , : = + - * / % & | ^ ~ . << >> <- ->`.
    Punct(&'static str),
}

impl Tok {
    /// The identifier text if this is an [`Tok::Ident`].
    pub fn as_ident(&self) -> Option<&str> {
        match self {
            Tok::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// True if this token is the given punctuation.
    pub fn is_punct(&self, p: &str) -> bool {
        matches!(self, Tok::Punct(q) if *q == p)
    }
}

/// Lex one source line into tokens. Comments start with `;` or `//` and run
/// to end of line. Returns an error message on malformed input.
pub fn lex_line(line: &str) -> Result<Vec<Tok>, String> {
    let mut toks = Vec::new();
    let bytes = line.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\r' => i += 1,
            ';' => break,
            '/' if bytes.get(i + 1) == Some(&b'/') => break,
            '(' => {
                toks.push(Tok::Punct("("));
                i += 1;
            }
            ')' => {
                toks.push(Tok::Punct(")"));
                i += 1;
            }
            ',' => {
                toks.push(Tok::Punct(","));
                i += 1;
            }
            ':' => {
                toks.push(Tok::Punct(":"));
                i += 1;
            }
            '=' => {
                toks.push(Tok::Punct("="));
                i += 1;
            }
            '+' => {
                toks.push(Tok::Punct("+"));
                i += 1;
            }
            '-' => {
                toks.push(Tok::Punct("-"));
                i += 1;
            }
            '*' => {
                toks.push(Tok::Punct("*"));
                i += 1;
            }
            '/' => {
                toks.push(Tok::Punct("/"));
                i += 1;
            }
            '%' => {
                toks.push(Tok::Punct("%"));
                i += 1;
            }
            '&' => {
                toks.push(Tok::Punct("&"));
                i += 1;
            }
            '|' => {
                toks.push(Tok::Punct("|"));
                i += 1;
            }
            '^' => {
                toks.push(Tok::Punct("^"));
                i += 1;
            }
            '~' => {
                toks.push(Tok::Punct("~"));
                i += 1;
            }
            '.' => {
                toks.push(Tok::Punct("."));
                i += 1;
            }
            '<' if bytes.get(i + 1) == Some(&b'<') => {
                toks.push(Tok::Punct("<<"));
                i += 2;
            }
            '>' if bytes.get(i + 1) == Some(&b'>') => {
                toks.push(Tok::Punct(">>"));
                i += 2;
            }
            '\'' => {
                // Character literal: 'c' or escaped '\n', '\t', '\\', '\''.
                let (value, consumed) = lex_char(&line[i..])?;
                toks.push(Tok::Num(value));
                i += consumed;
            }
            '"' => {
                let (s, consumed) = lex_string(&line[i..])?;
                toks.push(Tok::Str(s));
                i += consumed;
            }
            '0'..='9' => {
                let (value, consumed) = lex_number(&line[i..])?;
                toks.push(Tok::Num(value));
                i += consumed;
            }
            c if c.is_ascii_alphabetic() || c == '_' || c == '$' => {
                let start = i;
                while i < bytes.len() {
                    let c = bytes[i] as char;
                    if c.is_ascii_alphanumeric() || c == '_' || c == '$' {
                        i += 1;
                    } else {
                        break;
                    }
                }
                toks.push(Tok::Ident(line[start..i].to_string()));
            }
            other => return Err(format!("unexpected character {other:?}")),
        }
    }
    Ok(toks)
}

fn lex_char(s: &str) -> Result<(i64, usize), String> {
    let chars: Vec<char> = s.chars().collect();
    // chars[0] == '\''
    match chars.get(1) {
        Some('\\') => {
            let esc = chars.get(2).ok_or("unterminated character literal")?;
            let value = match esc {
                'n' => b'\n',
                't' => b'\t',
                'r' => b'\r',
                '0' => 0,
                '\\' => b'\\',
                '\'' => b'\'',
                other => return Err(format!("unknown escape {other:?}")),
            };
            if chars.get(3) != Some(&'\'') {
                return Err("unterminated character literal".into());
            }
            Ok((value as i64, 4))
        }
        Some(&c) if c != '\'' => {
            if chars.get(2) != Some(&'\'') {
                return Err("unterminated character literal".into());
            }
            if !c.is_ascii() {
                return Err(format!("non-ASCII character literal {c:?}"));
            }
            Ok((c as i64, 3))
        }
        _ => Err("empty character literal".into()),
    }
}

fn lex_string(s: &str) -> Result<(String, usize), String> {
    let mut out = String::new();
    let mut it = s.char_indices().skip(1); // skip opening quote
    while let Some((idx, c)) = it.next() {
        match c {
            '"' => return Ok((out, idx + 1)),
            '\\' => match it.next() {
                Some((_, 'n')) => out.push('\n'),
                Some((_, 't')) => out.push('\t'),
                Some((_, '0')) => out.push('\0'),
                Some((_, '\\')) => out.push('\\'),
                Some((_, '"')) => out.push('"'),
                other => return Err(format!("unknown string escape {other:?}")),
            },
            c => out.push(c),
        }
    }
    Err("unterminated string literal".into())
}

fn lex_number(s: &str) -> Result<(i64, usize), String> {
    let bytes = s.as_bytes();
    let (radix, start) = if s.len() >= 2 && bytes[0] == b'0' {
        match bytes[1] {
            b'x' | b'X' => (16, 2),
            b'b' | b'B' => (2, 2),
            b'o' | b'O' => (8, 2),
            _ => (10, 0),
        }
    } else {
        (10, 0)
    };
    let mut end = start;
    while end < bytes.len() {
        let c = bytes[end] as char;
        if c.is_digit(radix) || c == '_' {
            end += 1;
        } else {
            break;
        }
    }
    if end == start {
        return Err("malformed number literal".into());
    }
    let digits: String = s[start..end].chars().filter(|&c| c != '_').collect();
    let value =
        i64::from_str_radix(&digits, radix).map_err(|e| format!("bad number literal: {e}"))?;
    Ok((value, end))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_instruction_line() {
        let t = lex_line("  transfer 0x1280, 0x1340, 32 ; move packet").unwrap();
        assert_eq!(
            t,
            vec![
                Tok::Ident("transfer".into()),
                Tok::Num(0x1280),
                Tok::Punct(","),
                Tok::Num(0x1340),
                Tok::Punct(","),
                Tok::Num(32),
            ]
        );
    }

    #[test]
    fn lexes_label_and_directive() {
        let t = lex_line("loop: .db 1, 0b1010, 0o17, 'A', \"hi\\n\"").unwrap();
        assert_eq!(t[0], Tok::Ident("loop".into()));
        assert_eq!(t[1], Tok::Punct(":"));
        assert_eq!(t[2], Tok::Punct("."));
        assert_eq!(t[3], Tok::Ident("db".into()));
        assert_eq!(t[4], Tok::Num(1));
        assert_eq!(t[6], Tok::Num(0b1010));
        assert_eq!(t[8], Tok::Num(0o17));
        assert_eq!(t[10], Tok::Num(65));
        assert_eq!(t[12], Tok::Str("hi\n".into()));
    }

    #[test]
    fn comments_are_stripped() {
        assert!(lex_line("; whole line").unwrap().is_empty());
        assert!(lex_line("// c++ style").unwrap().is_empty());
        assert_eq!(lex_line("nop // tail").unwrap().len(), 1);
    }

    #[test]
    fn operators_lex() {
        let t = lex_line("1 << 4 | 2 >> 1 & ~3 ^ 5 % 2").unwrap();
        let puncts: Vec<&str> = t
            .iter()
            .filter_map(|t| match t {
                Tok::Punct(p) => Some(*p),
                _ => None,
            })
            .collect();
        assert_eq!(puncts, vec!["<<", "|", ">>", "&", "~", "^", "%"]);
    }

    #[test]
    fn underscores_in_numbers() {
        let t = lex_line("0x12_34 1_000").unwrap();
        assert_eq!(t, vec![Tok::Num(0x1234), Tok::Num(1000)]);
    }

    #[test]
    fn rejects_garbage() {
        assert!(lex_line("mov r0, @r1").is_err());
        assert!(lex_line("'").is_err());
        assert!(lex_line("\"unterminated").is_err());
        assert!(lex_line("0x").is_err());
    }

    #[test]
    fn helpers() {
        assert_eq!(Tok::Ident("x".into()).as_ident(), Some("x"));
        assert_eq!(Tok::Num(1).as_ident(), None);
        assert!(Tok::Punct(",").is_punct(","));
        assert!(!Tok::Punct(",").is_punct(":"));
    }
}
