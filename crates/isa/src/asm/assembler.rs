//! The ISA-generic two-pass assembler core.

use super::expr::EncodeCtx;
use super::lexer::{lex_line, Tok};
use super::AsmError;
use std::collections::BTreeMap;

/// Per-ISA sizing and encoding, plugged into the [`Assembler`].
///
/// Implementations exist for the event processor ([`crate::ep::EpIsa`]) and
/// the AVR subset (`ulp_mcu8::AvrIsa`).
pub trait Isa {
    /// Encoded size in bytes of `mnemonic` with the given operands.
    ///
    /// Called during pass 1, so it must not depend on symbol *values* —
    /// only on the mnemonic and operand shapes. Both ISAs in this workspace
    /// have fixed per-mnemonic sizes.
    fn size(&self, mnemonic: &str, operands: &[Vec<Tok>]) -> Result<usize, String>;

    /// Encode `mnemonic` with the given operands at `ctx.pc`.
    fn encode(
        &self,
        mnemonic: &str,
        operands: &[Vec<Tok>],
        ctx: &EncodeCtx<'_>,
    ) -> Result<Vec<u8>, String>;
}

/// A contiguous run of assembled bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Segment {
    /// Load address of the first byte.
    pub origin: u32,
    /// The bytes.
    pub data: Vec<u8>,
}

impl Segment {
    /// Address one past the last byte.
    pub fn end(&self) -> u32 {
        self.origin + self.data.len() as u32
    }
}

/// The output of assembly: segments plus the symbol table.
#[derive(Debug, Clone, Default)]
pub struct Image {
    segments: Vec<Segment>,
    symbols: BTreeMap<String, i64>,
}

impl Image {
    /// All segments, sorted by origin.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Value of a symbol (label or `.equ`), if defined.
    pub fn symbol(&self, name: &str) -> Option<i64> {
        self.symbols.get(name).copied()
    }

    /// The full symbol table.
    pub fn symbols(&self) -> &BTreeMap<String, i64> {
        &self.symbols
    }

    /// Total number of assembled bytes across all segments (the "code size"
    /// the paper reports: 11558 bytes for the Mica2 app vs 180 for theirs).
    pub fn byte_len(&self) -> usize {
        self.segments.iter().map(|s| s.data.len()).sum()
    }

    /// Render into a flat memory of `size` bytes, with `fill` elsewhere.
    ///
    /// # Errors
    ///
    /// Returns an error if any segment extends past `size`.
    pub fn flatten(&self, size: usize, fill: u8) -> Result<Vec<u8>, AsmError> {
        let mut mem = vec![fill; size];
        for seg in &self.segments {
            let end = seg.end() as usize;
            if end > size {
                return Err(AsmError::new(
                    0,
                    format!(
                        "segment at 0x{:04X}..0x{end:04X} exceeds memory size {size}",
                        seg.origin
                    ),
                ));
            }
            mem[seg.origin as usize..end].copy_from_slice(&seg.data);
        }
        Ok(mem)
    }
}

/// One parsed source line.
#[derive(Debug)]
struct Line {
    number: usize,
    labels: Vec<String>,
    body: Body,
}

#[derive(Debug)]
enum Body {
    Empty,
    Directive {
        name: String,
        operands: Vec<Vec<Tok>>,
    },
    Instruction {
        mnemonic: String,
        operands: Vec<Vec<Tok>>,
    },
}

/// The two-pass assembler. Construct with an [`Isa`] and call
/// [`assemble`](Assembler::assemble).
#[derive(Debug)]
pub struct Assembler<I> {
    isa: I,
}

impl<I: Isa> Assembler<I> {
    /// An assembler for the given instruction set.
    pub fn new(isa: I) -> Assembler<I> {
        Assembler { isa }
    }

    /// Assemble complete source text into an [`Image`].
    ///
    /// # Errors
    ///
    /// Returns the first lexical, syntactic, or encoding error, tagged with
    /// its source line.
    pub fn assemble(&self, source: &str) -> Result<Image, AsmError> {
        let lines = parse_lines(source)?;
        let mut symbols: BTreeMap<String, i64> = BTreeMap::new();

        // Pass 1: lay out, collecting label addresses and .equ values.
        self.layout(&lines, &mut symbols, None)?;

        // Pass 2: encode with the complete symbol table.
        let mut segments = Vec::new();
        self.layout(&lines, &mut symbols.clone(), Some(&mut segments))?;

        // The second layout re-derives symbols identically; keep pass-1's.
        let mut segments: Vec<Segment> = segments;
        segments.sort_by_key(|s| s.origin);
        for pair in segments.windows(2) {
            if pair[0].end() > pair[1].origin {
                return Err(AsmError::new(
                    0,
                    format!(
                        "overlapping segments at 0x{:04X} and 0x{:04X}",
                        pair[0].origin, pair[1].origin
                    ),
                ));
            }
        }
        Ok(Image { segments, symbols })
    }

    /// Shared pass body. With `emit: None` this is pass 1 (defines
    /// symbols); with `Some` it encodes into segments.
    fn layout(
        &self,
        lines: &[Line],
        symbols: &mut BTreeMap<String, i64>,
        mut emit: Option<&mut Vec<Segment>>,
    ) -> Result<(), AsmError> {
        let defining = emit.is_none();
        let mut lc: i64 = 0;
        let mut current: Option<Segment> = None;

        let flush = |current: &mut Option<Segment>, emit: &mut Option<&mut Vec<Segment>>| {
            if let (Some(seg), Some(out)) = (current.take(), emit.as_deref_mut()) {
                if !seg.data.is_empty() {
                    out.push(seg);
                }
            }
        };

        for line in lines {
            let err = |msg: String| AsmError::new(line.number, msg);
            for label in &line.labels {
                if defining
                    && symbols.insert(label.clone(), lc).is_some() {
                        return Err(err(format!("duplicate symbol `{label}`")));
                    }
            }
            match &line.body {
                Body::Empty => {}
                Body::Directive { name, operands } => match name.as_str() {
                    "org" => {
                        let target = eval_one(operands, symbols, lc, &err)?;
                        if !(0..=u32::MAX as i64).contains(&target) {
                            return Err(err(format!(".org target {target} out of range")));
                        }
                        flush(&mut current, &mut emit);
                        lc = target;
                    }
                    "equ" => {
                        // `.equ NAME, expr` or `.equ NAME = expr`
                        let toks = flatten_operands(operands);
                        let (sym, rest) = match toks.split_first() {
                            Some((Tok::Ident(s), rest)) => (s.clone(), rest),
                            _ => return Err(err(".equ requires a symbol name".into())),
                        };
                        let rest = match rest.split_first() {
                            Some((t, r)) if t.is_punct("=") => r,
                            _ => rest,
                        };
                        let ctx = EncodeCtx { symbols, pc: lc };
                        let value = ctx.eval(rest).map_err(&err)?;
                        if defining
                            && symbols.insert(sym.clone(), value).is_some() {
                                return Err(err(format!("duplicate symbol `{sym}`")));
                            }
                    }
                    "db" => {
                        let mut bytes = Vec::new();
                        for op in operands {
                            if let [Tok::Str(s)] = op.as_slice() {
                                bytes.extend_from_slice(s.as_bytes());
                            } else {
                                let ctx = EncodeCtx { symbols, pc: lc };
                                let v = if defining {
                                    // Sizes only; value may use forward refs.
                                    ctx.eval(op).unwrap_or(0)
                                } else {
                                    ctx.eval(op).map_err(&err)?
                                };
                                if !defining && !(-128..=255).contains(&v) {
                                    return Err(err(format!(".db value {v} does not fit a byte")));
                                }
                                bytes.push(v as u8);
                            }
                        }
                        emit_bytes(&mut current, &mut lc, &bytes, emit.as_deref_mut());
                    }
                    "dw" => {
                        let mut bytes = Vec::new();
                        for op in operands {
                            let ctx = EncodeCtx { symbols, pc: lc };
                            let v = if defining {
                                ctx.eval(op).unwrap_or(0)
                            } else {
                                ctx.eval(op).map_err(&err)?
                            };
                            if !defining && !(-32768..=65535).contains(&v) {
                                return Err(err(format!(".dw value {v} does not fit 16 bits")));
                            }
                            bytes.push((v & 0xFF) as u8);
                            bytes.push(((v >> 8) & 0xFF) as u8);
                        }
                        emit_bytes(&mut current, &mut lc, &bytes, emit.as_deref_mut());
                    }
                    "space" => {
                        let n = eval_one(operands, symbols, lc, &err)?;
                        if !(0..=1 << 20).contains(&n) {
                            return Err(err(format!(".space count {n} out of range")));
                        }
                        let bytes = vec![0u8; n as usize];
                        emit_bytes(&mut current, &mut lc, &bytes, emit.as_deref_mut());
                    }
                    "align" => {
                        let n = eval_one(operands, symbols, lc, &err)?;
                        if n <= 0 || (n & (n - 1)) != 0 {
                            return Err(err(format!(".align requires a power of two, got {n}")));
                        }
                        let pad = (n - (lc % n)) % n;
                        let bytes = vec![0u8; pad as usize];
                        emit_bytes(&mut current, &mut lc, &bytes, emit.as_deref_mut());
                    }
                    other => return Err(err(format!("unknown directive `.{other}`"))),
                },
                Body::Instruction { mnemonic, operands } => {
                    let size = self.isa.size(mnemonic, operands).map_err(&err)?;
                    if defining {
                        lc += size as i64;
                    } else {
                        let ctx = EncodeCtx { symbols, pc: lc };
                        let bytes = self.isa.encode(mnemonic, operands, &ctx).map_err(&err)?;
                        if bytes.len() != size {
                            return Err(err(format!(
                                "ISA bug: `{mnemonic}` sized {size} but encoded {} bytes",
                                bytes.len()
                            )));
                        }
                        emit_bytes(&mut current, &mut lc, &bytes, emit.as_deref_mut());
                    }
                }
            }
        }
        flush(&mut current, &mut emit);
        Ok(())
    }
}

fn eval_one(
    operands: &[Vec<Tok>],
    symbols: &BTreeMap<String, i64>,
    lc: i64,
    err: &impl Fn(String) -> AsmError,
) -> Result<i64, AsmError> {
    if operands.len() != 1 {
        return Err(err(format!("expected 1 operand, got {}", operands.len())));
    }
    let ctx = EncodeCtx { symbols, pc: lc };
    ctx.eval(&operands[0]).map_err(err)
}

fn flatten_operands(operands: &[Vec<Tok>]) -> Vec<Tok> {
    let mut out = Vec::new();
    for (i, op) in operands.iter().enumerate() {
        if i > 0 {
            out.push(Tok::Punct(","));
        }
        out.extend(op.iter().cloned());
    }
    // Remove the separating comma after the symbol name for `.equ N, v`.
    if out.len() >= 2 && out[1].is_punct(",") {
        out.remove(1);
    }
    out
}

fn emit_bytes(
    current: &mut Option<Segment>,
    lc: &mut i64,
    bytes: &[u8],
    emit: Option<&mut Vec<Segment>>,
) {
    if emit.is_some() {
        let seg = current.get_or_insert_with(|| Segment {
            origin: *lc as u32,
            data: Vec::new(),
        });
        seg.data.extend_from_slice(bytes);
    }
    *lc += bytes.len() as i64;
}

/// Split source into parsed lines: labels, directive/instruction, operands.
fn parse_lines(source: &str) -> Result<Vec<Line>, AsmError> {
    let mut out = Vec::new();
    for (idx, raw) in source.lines().enumerate() {
        let number = idx + 1;
        let mut toks = lex_line(raw).map_err(|e| AsmError::new(number, e))?;

        // Peel off leading `label:` pairs.
        let mut labels = Vec::new();
        while toks.len() >= 2 && toks[0].as_ident().is_some() && toks[1].is_punct(":") {
            labels.push(toks[0].as_ident().unwrap().to_string());
            toks.drain(..2);
        }

        let body = if toks.is_empty() {
            Body::Empty
        } else if toks[0].is_punct(".") {
            let name = match toks.get(1) {
                Some(Tok::Ident(s)) => s.to_ascii_lowercase(),
                other => {
                    return Err(AsmError::new(
                        number,
                        format!("expected directive name after '.', found {other:?}"),
                    ))
                }
            };
            Body::Directive {
                name,
                operands: split_operands(&toks[2..]),
            }
        } else if let Tok::Ident(m) = &toks[0] {
            Body::Instruction {
                mnemonic: m.to_ascii_lowercase(),
                operands: split_operands(&toks[1..]),
            }
        } else {
            return Err(AsmError::new(
                number,
                format!("expected mnemonic or directive, found {:?}", toks[0]),
            ));
        };
        out.push(Line {
            number,
            labels,
            body,
        });
    }
    Ok(out)
}

/// Split an operand token stream on top-level commas.
fn split_operands(toks: &[Tok]) -> Vec<Vec<Tok>> {
    if toks.is_empty() {
        return Vec::new();
    }
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut cur = Vec::new();
    for t in toks {
        match t {
            Tok::Punct("(") => {
                depth += 1;
                cur.push(t.clone());
            }
            Tok::Punct(")") => {
                depth = depth.saturating_sub(1);
                cur.push(t.clone());
            }
            Tok::Punct(",") if depth == 0 => {
                out.push(std::mem::take(&mut cur));
            }
            _ => cur.push(t.clone()),
        }
    }
    out.push(cur);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy ISA: `byte e` emits one byte, `word e` emits a little-endian
    /// 16-bit word, `rel label` emits a signed byte displacement from the
    /// *next* instruction.
    struct ToyIsa;
    impl Isa for ToyIsa {
        fn size(&self, mnemonic: &str, _operands: &[Vec<Tok>]) -> Result<usize, String> {
            match mnemonic {
                "byte" | "rel" => Ok(1),
                "word" => Ok(2),
                other => Err(format!("unknown mnemonic `{other}`")),
            }
        }
        fn encode(
            &self,
            mnemonic: &str,
            operands: &[Vec<Tok>],
            ctx: &EncodeCtx<'_>,
        ) -> Result<Vec<u8>, String> {
            if operands.len() != 1 {
                return Err("expected 1 operand".into());
            }
            let v = ctx.eval(&operands[0])?;
            Ok(match mnemonic {
                "byte" => vec![v as u8],
                "word" => vec![v as u8, (v >> 8) as u8],
                "rel" => vec![(v - (ctx.pc + 1)) as u8],
                _ => unreachable!(),
            })
        }
    }

    fn asm(src: &str) -> Image {
        Assembler::new(ToyIsa).assemble(src).unwrap()
    }

    #[test]
    fn basic_layout_and_labels() {
        let img = asm("start: byte 1\n  word 0x1234\nend:");
        assert_eq!(img.symbol("start"), Some(0));
        assert_eq!(img.symbol("end"), Some(3));
        assert_eq!(img.segments()[0].data, vec![1, 0x34, 0x12]);
        assert_eq!(img.byte_len(), 3);
    }

    #[test]
    fn org_creates_segments() {
        let img = asm(".org 0x10\nbyte 1\n.org 0x20\nbyte 2");
        assert_eq!(img.segments().len(), 2);
        assert_eq!(img.segments()[0].origin, 0x10);
        assert_eq!(img.segments()[1].origin, 0x20);
        let flat = img.flatten(0x21, 0xFF).unwrap();
        assert_eq!(flat[0x10], 1);
        assert_eq!(flat[0x1F], 0xFF);
        assert_eq!(flat[0x20], 2);
    }

    #[test]
    fn forward_references_resolve() {
        let img = asm("word target\ntarget: byte 0xAA");
        assert_eq!(img.segments()[0].data, vec![2, 0, 0xAA]);
    }

    #[test]
    fn relative_branches_use_pc() {
        // rel at address 0 pointing at label 3: displacement 3 - 1 = 2.
        let img = asm("rel target\nbyte 0\nbyte 0\ntarget: byte 1");
        assert_eq!(img.segments()[0].data[0], 2);
    }

    #[test]
    fn equ_and_expressions() {
        let img = asm(".equ BASE, 0x1000\n.equ CTRL = BASE + 4\nword CTRL");
        assert_eq!(img.symbol("CTRL"), Some(0x1004));
        assert_eq!(img.segments()[0].data, vec![0x04, 0x10]);
    }

    #[test]
    fn db_dw_space_align() {
        let img = asm(".db 1, 2, \"ab\"\n.align 8\n.dw 0x0102\n.space 2\nl: byte 0");
        let d = &img.segments()[0].data;
        assert_eq!(&d[..4], &[1, 2, b'a', b'b']);
        assert_eq!(&d[8..10], &[0x02, 0x01]);
        assert_eq!(img.symbol("l"), Some(12));
    }

    #[test]
    fn duplicate_label_rejected() {
        let e = Assembler::new(ToyIsa).assemble("x: byte 1\nx: byte 2");
        assert!(e.unwrap_err().msg.contains("duplicate"));
    }

    #[test]
    fn unknown_mnemonic_rejected_with_line() {
        let e = Assembler::new(ToyIsa)
            .assemble("byte 1\nbogus 2")
            .unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.to_string().contains("line 2"));
    }

    #[test]
    fn overlapping_segments_rejected() {
        let e = Assembler::new(ToyIsa)
            .assemble(".org 0x10\nword 0\n.org 0x11\nbyte 1")
            .unwrap_err();
        assert!(e.msg.contains("overlap"));
    }

    #[test]
    fn db_range_checked() {
        let e = Assembler::new(ToyIsa).assemble(".db 256").unwrap_err();
        assert!(e.msg.contains("fit a byte"));
        let e = Assembler::new(ToyIsa).assemble(".dw 65536").unwrap_err();
        assert!(e.msg.contains("fit 16 bits"));
    }

    #[test]
    fn flatten_rejects_oversize() {
        let img = asm(".org 0x100\nbyte 1");
        assert!(img.flatten(0x100, 0).is_err());
        assert!(img.flatten(0x101, 0).is_ok());
    }

    #[test]
    fn multiple_labels_one_line() {
        let img = asm("a: b: byte 7");
        assert_eq!(img.symbol("a"), Some(0));
        assert_eq!(img.symbol("b"), Some(0));
    }

    #[test]
    fn align_must_be_power_of_two() {
        let e = Assembler::new(ToyIsa).assemble(".align 3").unwrap_err();
        assert!(e.msg.contains("power of two"));
    }
}
