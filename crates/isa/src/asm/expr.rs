//! Constant-expression parsing and evaluation.
//!
//! Expressions appear in operands and directives: numbers, symbols, the
//! current location counter `.`, unary `-`/`~`, the usual binary operators
//! with C-like precedence, parentheses, and the AVR-style `lo8(x)`/`hi8(x)`
//! byte-extraction functions.

use super::lexer::Tok;
use std::collections::BTreeMap;

/// A parsed constant expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// Literal value.
    Num(i64),
    /// Symbol reference, resolved at evaluation time.
    Sym(String),
    /// The current location counter (`.`).
    Here,
    /// Unary negation.
    Neg(Box<Expr>),
    /// Bitwise complement.
    Not(Box<Expr>),
    /// Binary operation.
    Bin(&'static str, Box<Expr>, Box<Expr>),
    /// Low byte of the operand (`lo8(x)`).
    Lo8(Box<Expr>),
    /// High byte of the operand (`hi8(x)`).
    Hi8(Box<Expr>),
}

/// Context available while encoding: the symbol table and the current
/// location counter.
#[derive(Debug, Clone)]
pub struct EncodeCtx<'a> {
    /// Resolved symbols (labels and `.equ` definitions).
    pub symbols: &'a BTreeMap<String, i64>,
    /// Address of the instruction being encoded.
    pub pc: i64,
}

impl EncodeCtx<'_> {
    /// Parse and evaluate a full token slice as one expression.
    pub fn eval(&self, toks: &[Tok]) -> Result<i64, String> {
        let expr = Expr::parse_all(toks)?;
        expr.eval(self)
    }
}

impl Expr {
    /// Parse a complete token slice; it is an error if tokens remain.
    pub fn parse_all(toks: &[Tok]) -> Result<Expr, String> {
        let mut pos = 0;
        let e = Self::parse_bp(toks, &mut pos, 0)?;
        if pos != toks.len() {
            return Err(format!("trailing tokens in expression: {:?}", &toks[pos..]));
        }
        Ok(e)
    }

    /// Parse a prefix of the token slice, advancing `pos`.
    pub fn parse_prefix(toks: &[Tok], pos: &mut usize) -> Result<Expr, String> {
        Self::parse_bp(toks, pos, 0)
    }

    fn parse_bp(toks: &[Tok], pos: &mut usize, min_bp: u8) -> Result<Expr, String> {
        let mut lhs = Self::parse_atom(toks, pos)?;
        loop {
            let op = match toks.get(*pos) {
                Some(Tok::Punct(p)) if binding_power(p).is_some() => *p,
                _ => break,
            };
            let (l_bp, r_bp) = binding_power(op).unwrap();
            if l_bp < min_bp {
                break;
            }
            *pos += 1;
            let rhs = Self::parse_bp(toks, pos, r_bp)?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_atom(toks: &[Tok], pos: &mut usize) -> Result<Expr, String> {
        match toks.get(*pos) {
            Some(Tok::Num(n)) => {
                *pos += 1;
                Ok(Expr::Num(*n))
            }
            Some(Tok::Ident(name)) => {
                *pos += 1;
                // Function-style byte extraction: lo8(expr), hi8(expr).
                if matches!(toks.get(*pos), Some(t) if t.is_punct("(")) {
                    let func = name.to_ascii_lowercase();
                    if func == "lo8" || func == "hi8" {
                        *pos += 1;
                        let inner = Self::parse_bp(toks, pos, 0)?;
                        if !matches!(toks.get(*pos), Some(t) if t.is_punct(")")) {
                            return Err(format!("missing ')' after {func}("));
                        }
                        *pos += 1;
                        return Ok(if func == "lo8" {
                            Expr::Lo8(Box::new(inner))
                        } else {
                            Expr::Hi8(Box::new(inner))
                        });
                    }
                }
                Ok(Expr::Sym(name.clone()))
            }
            Some(Tok::Punct(".")) => {
                *pos += 1;
                Ok(Expr::Here)
            }
            Some(Tok::Punct("-")) => {
                *pos += 1;
                Ok(Expr::Neg(Box::new(Self::parse_atom(toks, pos)?)))
            }
            Some(Tok::Punct("~")) => {
                *pos += 1;
                Ok(Expr::Not(Box::new(Self::parse_atom(toks, pos)?)))
            }
            Some(Tok::Punct("(")) => {
                *pos += 1;
                let e = Self::parse_bp(toks, pos, 0)?;
                if !matches!(toks.get(*pos), Some(t) if t.is_punct(")")) {
                    return Err("missing ')'".into());
                }
                *pos += 1;
                Ok(e)
            }
            other => Err(format!("expected expression, found {other:?}")),
        }
    }

    /// Evaluate under `ctx`.
    ///
    /// # Errors
    ///
    /// Returns an error for undefined symbols and division by zero.
    pub fn eval(&self, ctx: &EncodeCtx<'_>) -> Result<i64, String> {
        Ok(match self {
            Expr::Num(n) => *n,
            Expr::Here => ctx.pc,
            Expr::Sym(name) => *ctx
                .symbols
                .get(name)
                .ok_or_else(|| format!("undefined symbol `{name}`"))?,
            Expr::Neg(e) => e.eval(ctx)?.wrapping_neg(),
            Expr::Not(e) => !e.eval(ctx)?,
            Expr::Lo8(e) => e.eval(ctx)? & 0xFF,
            Expr::Hi8(e) => (e.eval(ctx)? >> 8) & 0xFF,
            Expr::Bin(op, a, b) => {
                let a = a.eval(ctx)?;
                let b = b.eval(ctx)?;
                match *op {
                    "+" => a.wrapping_add(b),
                    "-" => a.wrapping_sub(b),
                    "*" => a.wrapping_mul(b),
                    "/" => {
                        if b == 0 {
                            return Err("division by zero".into());
                        }
                        a / b
                    }
                    "%" => {
                        if b == 0 {
                            return Err("modulo by zero".into());
                        }
                        a % b
                    }
                    "&" => a & b,
                    "|" => a | b,
                    "^" => a ^ b,
                    "<<" => a.wrapping_shl(b as u32),
                    ">>" => a.wrapping_shr(b as u32),
                    other => return Err(format!("unknown operator {other}")),
                }
            }
        })
    }
}

fn binding_power(op: &str) -> Option<(u8, u8)> {
    // C-like precedence, left-associative throughout.
    Some(match op {
        "|" => (1, 2),
        "^" => (3, 4),
        "&" => (5, 6),
        "<<" | ">>" => (7, 8),
        "+" | "-" => (9, 10),
        "*" | "/" | "%" => (11, 12),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::lexer::lex_line;

    fn eval(src: &str) -> i64 {
        let toks = lex_line(src).unwrap();
        let symbols = BTreeMap::from([("base".to_string(), 0x1000_i64), ("n".to_string(), 3)]);
        let ctx = EncodeCtx {
            symbols: &symbols,
            pc: 0x200,
        };
        ctx.eval(&toks).unwrap()
    }

    #[test]
    fn precedence() {
        assert_eq!(eval("2 + 3 * 4"), 14);
        assert_eq!(eval("(2 + 3) * 4"), 20);
        assert_eq!(eval("1 << 4 | 1"), 17);
        assert_eq!(eval("7 & 3 ^ 1"), 2);
        assert_eq!(eval("10 - 3 - 2"), 5); // left associative
        assert_eq!(eval("16 / 4 / 2"), 2);
        assert_eq!(eval("7 % 4"), 3);
    }

    #[test]
    fn unary_and_symbols() {
        assert_eq!(eval("-5 + 10"), 5);
        assert_eq!(eval("~0 & 0xFF"), 0xFF);
        assert_eq!(eval("base + n * 2"), 0x1006);
        assert_eq!(eval(". + 2"), 0x202);
    }

    #[test]
    fn byte_extraction() {
        assert_eq!(eval("lo8(0x1234)"), 0x34);
        assert_eq!(eval("hi8(0x1234)"), 0x12);
        assert_eq!(eval("hi8(base + 0xFF)"), 0x10);
    }

    #[test]
    fn errors() {
        let toks = lex_line("missing_sym + 1").unwrap();
        let symbols = BTreeMap::new();
        let ctx = EncodeCtx {
            symbols: &symbols,
            pc: 0,
        };
        assert!(ctx.eval(&toks).unwrap_err().contains("undefined symbol"));

        let toks = lex_line("1 / 0").unwrap();
        assert!(ctx.eval(&toks).unwrap_err().contains("division by zero"));

        let toks = lex_line("1 +").unwrap();
        assert!(ctx.eval(&toks).is_err());

        let toks = lex_line("(1 + 2").unwrap();
        assert!(ctx.eval(&toks).is_err());

        let toks = lex_line("1 2").unwrap();
        assert!(ctx.eval(&toks).unwrap_err().contains("trailing"));
    }

    #[test]
    fn parse_prefix_stops_at_comma() {
        let toks = lex_line("1 + 2, 3").unwrap();
        let mut pos = 0;
        let e = Expr::parse_prefix(&toks, &mut pos).unwrap();
        let symbols = BTreeMap::new();
        let ctx = EncodeCtx {
            symbols: &symbols,
            pc: 0,
        };
        assert_eq!(e.eval(&ctx).unwrap(), 3);
        assert!(toks[pos].is_punct(","));
    }
}
