//! Generic two-pass assembler.
//!
//! The assembler is ISA-agnostic: it handles lexing, labels, directives
//! (`.org`, `.equ`, `.db`, `.dw`, `.space`, `.align`), expressions, and the
//! two-pass layout, while an [`Isa`] implementation supplies per-mnemonic
//! sizing and encoding. The event-processor ISA ([`crate::ep::EpIsa`]) and
//! the AVR subset in `ulp-mcu8` both plug in here.

mod assembler;
mod expr;
mod lexer;

pub use assembler::{Assembler, Image, Isa, Segment};
pub use expr::{EncodeCtx, Expr};
pub use lexer::{lex_line, Tok};

use std::fmt;

/// An assembly error, tagged with the 1-based source line it occurred on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based source line number (0 for file-level errors).
    pub line: usize,
    /// What went wrong.
    pub msg: String,
}

impl AsmError {
    pub(crate) fn new(line: usize, msg: impl Into<String>) -> AsmError {
        AsmError {
            line,
            msg: msg.into(),
        }
    }
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "assembly error: {}", self.msg)
        } else {
            write!(f, "assembly error at line {}: {}", self.line, self.msg)
        }
    }
}

impl std::error::Error for AsmError {}
