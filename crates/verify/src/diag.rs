//! Typed diagnostics and the per-ISR report.

use std::fmt;
use ulp_sim::diag as render;

/// Diagnostic severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Suspicious but survivable: the ISR runs, wasting energy or
    /// doing nothing where it meant to do something.
    Warning,
    /// The ISR is wrong: it faults the bus, violates the address map,
    /// or breaks its timing contract.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// The closed set of diagnostic classes the checker emits.
///
/// Classes marked *fault* are reproducible as a dynamic
/// [`BusError`](ulp_core::slaves::BusError) in the simulator; the
/// cross-validation suite holds that equivalence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DiagClass {
    /// Read/write/transfer touching a component that is powered off at
    /// that point of the ISR. *Fault* (`BusError::Gated`/`Sram`).
    PoweredOffAccess,
    /// Access to a component whose power state the analysis cannot
    /// prove (caller marked it [`PowerState::Unknown`](crate::PowerState::Unknown)).
    UnknownPowerAccess,
    /// `SWITCHON` of a component already on, or `SWITCHOFF` of one
    /// already off (a no-op burning fetch/execute cycles).
    RedundantSwitch,
    /// A component this ISR powered on is still on at exit and is not
    /// declared as an intentional hand-off — an energy leak.
    LeftOnAtExit,
    /// Write to a register the device hardware latches (writes are
    /// silently ignored).
    ReadOnlyWrite,
    /// Access to an address no bus slave decodes. *Fault*
    /// (`BusError::Unmapped`).
    UnmappedAccess,
    /// `TRANSFER` whose source or destination block leaves its decoded
    /// region — buffer overrun or region-boundary cross. *Fault*.
    TransferBounds,
    /// `SWITCHON`/`SWITCHOFF` of an unassigned component id or of the
    /// microcontroller. *Fault* (`BusError::BadPowerTarget`).
    BadPowerTarget,
    /// The ISR gates (or requires gated) an SRAM bank holding its own
    /// remaining code or vector table. *Fault* (`BusError::Sram`).
    IsrBankGated,
    /// The ISR image overlaps the EP/µC vector tables below 0x0100.
    VectorOverlap,
    /// Decoding ran off the end of the image (or into a truncated
    /// instruction) without `TERMINATE`/`WAKEUP`: execution continues
    /// into whatever follows in memory. *Fault* in zero-filled memory.
    MissingTerminator,
    /// Unreachable bytes after the terminator (dead footprint).
    TrailingBytes,
    /// The WCET bound exceeds the caller's event-period budget.
    WcetOverrun,
}

impl DiagClass {
    /// Stable kebab-case code used in rendered diagnostics.
    pub fn code(self) -> &'static str {
        match self {
            DiagClass::PoweredOffAccess => "powered-off-access",
            DiagClass::UnknownPowerAccess => "unknown-power-access",
            DiagClass::RedundantSwitch => "redundant-switch",
            DiagClass::LeftOnAtExit => "left-on-at-exit",
            DiagClass::ReadOnlyWrite => "read-only-write",
            DiagClass::UnmappedAccess => "unmapped-access",
            DiagClass::TransferBounds => "transfer-bounds",
            DiagClass::BadPowerTarget => "bad-power-target",
            DiagClass::IsrBankGated => "isr-bank-gated",
            DiagClass::VectorOverlap => "vector-overlap",
            DiagClass::MissingTerminator => "missing-terminator",
            DiagClass::TrailingBytes => "trailing-bytes",
            DiagClass::WcetOverrun => "wcet-overrun",
        }
    }

    /// Severity of this class.
    pub fn severity(self) -> Severity {
        match self {
            DiagClass::UnknownPowerAccess
            | DiagClass::RedundantSwitch
            | DiagClass::LeftOnAtExit
            | DiagClass::TrailingBytes => Severity::Warning,
            _ => Severity::Error,
        }
    }

    /// Whether this class reproduces as a dynamic bus fault in the
    /// simulator (the cross-validation contract).
    pub fn is_fault(self) -> bool {
        matches!(
            self,
            DiagClass::PoweredOffAccess
                | DiagClass::UnmappedAccess
                | DiagClass::TransferBounds
                | DiagClass::BadPowerTarget
                | DiagClass::IsrBankGated
                | DiagClass::MissingTerminator
        )
    }
}

/// One finding, tied to an instruction offset when it concerns a
/// specific instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The finding's class.
    pub class: DiagClass,
    /// Byte offset of the offending instruction from the ISR start
    /// (`None` for whole-ISR findings such as WCET overruns).
    pub offset: Option<u16>,
    /// Assembler rendering of the offending instruction, if any.
    pub insn: Option<String>,
    /// Human-readable description.
    pub message: String,
    /// Optional follow-up note.
    pub note: Option<String>,
}

impl Diagnostic {
    /// Render as rustc-style lines.
    pub fn render(&self, isr_name: &str) -> String {
        let mut out = render::header(
            &self.class.severity().to_string(),
            self.class.code(),
            &self.message,
        );
        out.push('\n');
        let loc = match self.offset {
            Some(off) => format!("{isr_name}+0x{off:04X}"),
            None => isr_name.to_string(),
        };
        out.push_str(&render::pointer(&loc, self.insn.as_deref().unwrap_or("")));
        if let Some(note) = &self.note {
            out.push('\n');
            out.push_str(&render::note(note));
        }
        out
    }
}

/// The result of checking one ISR image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Report {
    /// Name the ISR was checked under (used in rendered locations).
    pub name: String,
    /// Interrupt id the ISR is installed on, if known.
    pub irq: Option<u8>,
    /// Instructions on the execution path (up to the terminator).
    pub insns: usize,
    /// Bytes in the image.
    pub bytes: usize,
    /// Worst-case execution time in cycles, from dispatch to `READY`
    /// (includes the configured worst-case bus wait).
    pub wcet: u64,
    /// The budget the WCET was checked against, if any.
    pub budget: Option<u64>,
    /// Findings in program order (whole-ISR findings last).
    pub diags: Vec<Diagnostic>,
}

impl Report {
    /// Number of error-severity findings.
    pub fn errors(&self) -> usize {
        self.diags
            .iter()
            .filter(|d| d.class.severity() == Severity::Error)
            .count()
    }

    /// Number of warning-severity findings.
    pub fn warnings(&self) -> usize {
        self.diags.len() - self.errors()
    }

    /// Whether any finding belongs to a fault class (reproducible as a
    /// dynamic `BusError`).
    pub fn has_fault_class(&self) -> bool {
        self.diags.iter().any(|d| d.class.is_fault())
    }

    /// Whether the report is free of errors *and* warnings.
    pub fn is_clean(&self) -> bool {
        self.diags.is_empty()
    }

    /// Render the full report deterministically.
    pub fn render(&self) -> String {
        let mut out = format!("check `{}`", self.name);
        if let Some(irq) = self.irq {
            match ulp_core::map::irq_name(irq) {
                Some(name) => out.push_str(&format!(" (irq {irq} {name})")),
                None => out.push_str(&format!(" (irq {irq})")),
            }
        }
        out.push_str(&format!(
            ": {} instruction{}, {} byte{}, WCET {} cycles",
            self.insns,
            if self.insns == 1 { "" } else { "s" },
            self.bytes,
            if self.bytes == 1 { "" } else { "s" },
            self.wcet,
        ));
        if let Some(budget) = self.budget {
            out.push_str(&format!(" (budget {budget})"));
        }
        out.push('\n');
        for diag in &self.diags {
            out.push_str(&diag.render(&self.name));
            out.push('\n');
        }
        out.push_str(&render::summary(self.errors(), self.warnings()));
        out.push('\n');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_and_fault_partition() {
        use DiagClass::*;
        let all = [
            PoweredOffAccess,
            UnknownPowerAccess,
            RedundantSwitch,
            LeftOnAtExit,
            ReadOnlyWrite,
            UnmappedAccess,
            TransferBounds,
            BadPowerTarget,
            IsrBankGated,
            VectorOverlap,
            MissingTerminator,
            TrailingBytes,
            WcetOverrun,
        ];
        // Every fault class is an error (faults halt the system).
        for class in all {
            if class.is_fault() {
                assert_eq!(class.severity(), Severity::Error, "{class:?}");
            }
        }
        // Codes are unique and kebab-case.
        let mut codes: Vec<_> = all.iter().map(|c| c.code()).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), all.len());
        for code in codes {
            assert!(code
                .chars()
                .all(|c| c.is_ascii_lowercase() || c == '-'));
        }
    }

    #[test]
    fn report_renders_deterministically() {
        let report = Report {
            name: "demo".into(),
            irq: Some(16),
            insns: 2,
            bytes: 4,
            wcet: 6,
            budget: Some(1000),
            diags: vec![Diagnostic {
                class: DiagClass::TrailingBytes,
                offset: None,
                insn: None,
                message: "1 unreachable byte after terminator".into(),
                note: None,
            }],
        };
        let a = report.render();
        let b = report.render();
        assert_eq!(a, b);
        assert!(a.starts_with("check `demo` (irq 16 MsgReady): 2 instructions, 4 bytes, WCET 6 cycles (budget 1000)\n"));
        assert!(a.ends_with("1 warning\n"));
    }
}
