#![warn(missing_docs)]
//! `ulp-verify`: a static checker for event-processor ISR programs.
//!
//! The paper's core claim is that EP ISRs run autonomously against
//! power-gated peripherals while the microcontroller sleeps — which
//! means an ISR that `READ`s a component it never `SWITCHON`ed, or
//! whose worst-case cycle count overruns the inter-event deadline,
//! fails silently in exactly the scenario the architecture exists to
//! handle. This crate lints encoded ISR images *before* they are
//! installed:
//!
//! * **Structure** — ISRs are straight-line programs terminated by
//!   `TERMINATE`/`WAKEUP`, so decoding yields a linear CFG and the
//!   analysis below is a *precise* abstract interpretation, not an
//!   approximation.
//! * **Power-state dataflow** — a three-point lattice
//!   ([`PowerState`]: Off/On/Unknown) per 5-bit component id, seeded
//!   from the system reset state plus caller assumptions, flags
//!   accesses to powered-off components, redundant
//!   `SWITCHON`/`SWITCHOFF`, and components left on at exit.
//! * **Address-map conformance** — every access is checked against the
//!   machine-readable map tables in `ulp_core::map`: unmapped holes,
//!   writes to read-only registers, `TRANSFER` blocks that leave their
//!   region or overrun the 32-byte buffers.
//! * **WCET** — a worst-case cycle bound from the event processor's
//!   documented costs (2-cycle LOOKUP, 1 cycle per fetched word,
//!   per-opcode execute cycles, state-aware `SWITCHON` handshake
//!   stalls), checked against an optional event-period budget.
//!
//! Every rule is *cross-validated against the simulator*: the test
//! suite reproduces each error class as a dynamic `BusError` fault or
//! `BusLint` observation in `ulp-core`, and proves that clean programs
//! simulate without faults with the WCET bound exactly equal to the
//! measured cycle count. The simulator is the ground truth that keeps
//! this analyzer honest.
//!
//! # Whole-firmware analysis for mcu8
//!
//! The Mica2 baseline's firmware is the opposite problem — branches,
//! loops, subroutines, a software stack, preemptive interrupts — and
//! gets its own analyzer, [`check_firmware`]: CFG recovery from the
//! same `ulp_mcu8::Predecoded` table the simulator steps, a
//! register/stack abstract interpretation composed bottom-up through
//! the call graph, interrupt-safety lints ([`FwDiagClass`]), WCET
//! bounds that recover immediate-counted loop trip counts, and a
//! whole-firmware stack bound. Cross-validated the same way: exact
//! WCETs equal measured dispatch-to-`reti` cycles, upper bounds cover
//! every run, stack figures match the observed SP excursion
//! (`tests/mcu8_crossval.rs`).
//!
//! # Example
//!
//! ```
//! use ulp_isa::ep::{encode_program, Instruction as I};
//! use ulp_verify::{check_isr, CheckContext, DiagClass};
//!
//! // READ of the message processor's status register without a
//! // preceding SWITCHON: powered off at reset, so this faults in the
//! // field — and the checker catches it on the desk.
//! let isr = encode_program(&[I::Read(0x1201), I::Terminate]).unwrap();
//! let report = check_isr(&isr, &CheckContext::system_reset("demo"));
//! assert_eq!(report.diags[0].class, DiagClass::PoweredOffAccess);
//! assert!(report.has_fault_class());
//! ```

mod check;
mod diag;
mod mcu8;

pub use check::{check_isr, CheckContext, PowerState};
pub use diag::{DiagClass, Diagnostic, Report, Severity};
pub use mcu8::{
    check_firmware, EntryReport, FirmwareConfig, FirmwareReport, FwDiagClass, FwDiagnostic,
    VectorDispatch, WcetBound,
};
