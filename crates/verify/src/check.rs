//! The abstract interpretation over a decoded ISR.
//!
//! ISRs are straight-line: decoding yields the exact execution order,
//! so the power lattice is walked once, precisely. With every initial
//! power state known ([`PowerState::On`]/[`PowerState::Off`]) the
//! analysis is *exact* — the WCET bound equals the simulator's measured
//! cycle count, and the cross-validation suite asserts that equality.

use crate::diag::{DiagClass, Diagnostic, Report};
use ulp_core::map;
use ulp_core::power::WakeLatency;
use ulp_isa::ep::{decode_isr_meta, Instruction, MAX_COMPONENTS};

/// Abstract power state of one component in the dataflow lattice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PowerState {
    /// Proven off.
    Off,
    /// Proven on.
    On,
    /// Not provable from the caller's assumptions (accesses warn, and
    /// `SWITCHON` costs its worst-case handshake).
    Unknown,
}

/// Everything the checker needs to know about the environment an ISR
/// runs in.
#[derive(Debug, Clone)]
pub struct CheckContext {
    /// Name used in the report and rendered locations.
    pub name: String,
    /// Interrupt id the ISR is installed on. Its source component is
    /// assumed on at entry (a pending interrupt is proof the source was
    /// powered when it fired).
    pub irq: Option<u8>,
    /// Address the image is loaded at (enables vector-overlap and
    /// self-gating checks).
    pub isr_addr: Option<u16>,
    /// Entry power state per 5-bit component id.
    pub initial: [PowerState; MAX_COMPONENTS as usize],
    /// Components this ISR may intentionally leave on at exit
    /// (hand-offs to a chained ISR, e.g. the message processor between
    /// sample accumulation and `MsgReady`).
    pub allowed_left_on: Vec<u8>,
    /// Event-period budget in cycles for the WCET check.
    pub wcet_budget: Option<u64>,
    /// Worst-case `WAIT_BUS` cycles before dispatch (0 when the
    /// microcontroller is asleep, which is the autonomous steady state).
    pub max_bus_wait: u64,
    /// Wake-handshake latencies used for `SWITCHON` stalls.
    pub wake: WakeLatency,
}

impl CheckContext {
    /// The system reset environment: timer and filter on, all SRAM
    /// banks on, message processor / radio / sensor off, paper wake
    /// latencies, microcontroller asleep (no bus contention).
    pub fn system_reset(name: &str) -> CheckContext {
        let mut initial = [PowerState::Off; MAX_COMPONENTS as usize];
        initial[map::Component::Timer as usize] = PowerState::On;
        initial[map::Component::Filter as usize] = PowerState::On;
        for bank in 0..8 {
            initial[map::Component::mem_bank(bank) as usize] = PowerState::On;
        }
        CheckContext {
            name: name.to_string(),
            irq: None,
            isr_addr: None,
            initial,
            allowed_left_on: Vec::new(),
            wcet_budget: None,
            max_bus_wait: 0,
            wake: WakeLatency::paper(),
        }
    }

    /// Set the interrupt id the ISR is installed on.
    pub fn with_irq(mut self, irq: u8) -> Self {
        self.irq = Some(irq);
        self
    }

    /// Set the load address of the image.
    pub fn with_isr_addr(mut self, addr: u16) -> Self {
        self.isr_addr = Some(addr);
        self
    }

    /// Set the WCET budget in cycles.
    pub fn with_budget(mut self, cycles: u64) -> Self {
        self.wcet_budget = Some(cycles);
        self
    }

    /// Assume component `id` is in `state` at entry.
    pub fn assume(mut self, id: u8, state: PowerState) -> Self {
        self.initial[id as usize] = state;
        self
    }

    /// Declare that leaving component `id` on at exit is intentional.
    pub fn allow_left_on(mut self, id: u8) -> Self {
        self.allowed_left_on.push(id);
        self
    }
}

/// Name of component id `id` for diagnostics.
fn comp_name(id: u8) -> String {
    match map::Component::decode(id) {
        Some((map::Component::MemBank0, Some(bank))) => format!("memory bank {bank}"),
        Some((comp, _)) => comp.name().to_string(),
        None => format!("unassigned component {id}"),
    }
}

/// Execute-phase cycle cost of `insn` given the switch-on stall.
fn exec_cycles(insn: &Instruction, switchon_stall: u64) -> u64 {
    match insn {
        Instruction::SwitchOn(_) => 1 + switchon_stall,
        Instruction::SwitchOff(_)
        | Instruction::Read(_)
        | Instruction::Write(_)
        | Instruction::WriteI { .. }
        | Instruction::Terminate => 1,
        Instruction::Transfer { len, .. } => 2 * u64::from(*len),
        Instruction::Wakeup(_) => 2,
    }
}

struct Walk<'a> {
    ctx: &'a CheckContext,
    state: [PowerState; MAX_COMPONENTS as usize],
    turned_on: Vec<u8>,
    diags: Vec<Diagnostic>,
    cycles: u64,
}

impl Walk<'_> {
    fn push(
        &mut self,
        class: DiagClass,
        offset: Option<u16>,
        insn: Option<&Instruction>,
        message: String,
        note: Option<String>,
    ) {
        self.diags.push(Diagnostic {
            class,
            offset,
            insn: insn.map(|i| i.to_string()),
            message,
            note,
        });
    }

    /// Power check of a single byte access; `verb` is "read"/"write"/
    /// "transfer read"/"transfer write".
    fn check_power(&mut self, addr: u16, verb: &str, offset: u16, insn: &Instruction) {
        let Some(guard) = map::guard_component(addr) else {
            return; // unmapped (reported separately) or always-on
        };
        match self.state[guard as usize] {
            PowerState::On => {}
            PowerState::Off => self.push(
                DiagClass::PoweredOffAccess,
                Some(offset),
                Some(insn),
                format!(
                    "{verb} of 0x{addr:04X} while {} is off",
                    comp_name(guard)
                ),
                Some(format!("`switchon {guard}` must precede this access")),
            ),
            PowerState::Unknown => self.push(
                DiagClass::UnknownPowerAccess,
                Some(offset),
                Some(insn),
                format!(
                    "{verb} of 0x{addr:04X}: power state of {} is unknown",
                    comp_name(guard)
                ),
                None,
            ),
        }
    }

    /// Map + power check of a scalar access.
    fn check_access(&mut self, addr: u16, write: bool, offset: u16, insn: &Instruction) {
        let verb = if write { "write" } else { "read" };
        if map::region_at(addr).is_none() {
            self.push(
                DiagClass::UnmappedAccess,
                Some(offset),
                Some(insn),
                format!("{verb} of unmapped address 0x{addr:04X}"),
                Some("no bus slave decodes this address".to_string()),
            );
            return;
        }
        self.check_power(addr, verb, offset, insn);
        if write {
            if let Some((region, reg)) = map::register_at(addr) {
                if reg.access == map::Access::ReadOnly {
                    self.push(
                        DiagClass::ReadOnlyWrite,
                        Some(offset),
                        Some(insn),
                        format!(
                            "write to read-only register {} at 0x{addr:04X}",
                            reg.name
                        ),
                        Some(format!("the {} hardware ignores this write", region.name)),
                    );
                }
            }
        }
    }

    /// Map + power check of one `TRANSFER` block.
    fn check_transfer_range(
        &mut self,
        base: u16,
        len: u8,
        write: bool,
        offset: u16,
        insn: &Instruction,
    ) {
        let what = if write { "destination" } else { "source" };
        let verb = if write {
            "transfer write"
        } else {
            "transfer read"
        };
        let Some(region) = map::region_at(base) else {
            self.push(
                DiagClass::UnmappedAccess,
                Some(offset),
                Some(insn),
                format!("{verb} of unmapped address 0x{base:04X}"),
                Some("no bus slave decodes this address".to_string()),
            );
            return;
        };
        let end = u32::from(base) + u32::from(len); // exclusive
        let region_end = u32::from(region.base) + u32::from(region.len);
        if end > region_end {
            let message = if region.kind == map::RegionKind::Buffer {
                format!(
                    "transfer {what} block 0x{base:04X}..0x{end:04X} overruns the \
                     {}-byte buffer `{}`",
                    region.len, region.name
                )
            } else {
                format!(
                    "transfer {what} block 0x{base:04X}..0x{end:04X} crosses out of \
                     region `{}` (ends at 0x{region_end:04X})",
                    region.name
                )
            };
            self.push(
                DiagClass::TransferBounds,
                Some(offset),
                Some(insn),
                message,
                Some("the event processor copies the block byte-by-byte; the first \
                      byte past the region faults"
                    .to_string()),
            );
        }
        // Power-check the in-region part; memory blocks may legally span
        // two banks, so check each covered bank once.
        let last = end.min(region_end).saturating_sub(1) as u16;
        self.check_power(base, verb, offset, insn);
        if region.kind == map::RegionKind::Memory && last / 0x0100 != base / 0x0100 {
            self.check_power(last, verb, offset, insn);
        }
    }

    /// Check that bank `gated` does not hold ISR bytes in
    /// `[from_off, image_len)` (the code still to be fetched).
    fn check_self_gate(
        &mut self,
        gated_bank: usize,
        from_off: usize,
        image_len: usize,
        offset: u16,
        insn: &Instruction,
    ) {
        let Some(isr_addr) = self.ctx.isr_addr else {
            return;
        };
        let lo = u32::from(isr_addr) + from_off as u32;
        let hi = u32::from(isr_addr) + image_len as u32;
        let bank_lo = u32::from(map::Component::mem_bank(gated_bank) as u16 - 8) * 0x0100;
        let bank_hi = bank_lo + 0x0100;
        if lo < bank_hi && hi > bank_lo {
            self.push(
                DiagClass::IsrBankGated,
                Some(offset),
                Some(insn),
                format!(
                    "switchoff of memory bank {gated_bank} gates the ISR's own code \
                     at 0x{:04X}",
                    lo.max(bank_lo) as u16
                ),
                Some("the next fetch from this bank faults".to_string()),
            );
        }
    }
}

/// Statically check one encoded ISR image against `ctx`.
///
/// The returned [`Report`] carries every finding in program order plus
/// the WCET bound; [`Report::render`] produces the deterministic text
/// the `epcheck` CLI and the golden tests pin.
pub fn check_isr(bytes: &[u8], ctx: &CheckContext) -> Report {
    let meta = decode_isr_meta(bytes);
    let mut walk = Walk {
        ctx,
        state: ctx.initial,
        turned_on: Vec::new(),
        diags: Vec::new(),
        cycles: 0,
    };

    // Entry assumption: the interrupt's source component raised it, so
    // it was powered at that instant.
    if let Some(source) = ctx.irq.and_then(map::irq_source) {
        walk.state[source as usize] = PowerState::On;
    }

    // Image placement checks.
    if let Some(isr_addr) = ctx.isr_addr {
        let image_end = u32::from(isr_addr) + bytes.len() as u32;
        if map::ranges_overlap((u32::from(isr_addr), image_end), (0, 0x0100)) {
            walk.diags.push(Diagnostic {
                class: DiagClass::VectorOverlap,
                offset: None,
                insn: None,
                message: format!(
                    "ISR image at 0x{isr_addr:04X}..0x{image_end:04X} overlaps the \
                     EP/µC vector tables (below 0x0100)"
                ),
                note: Some(
                    "vector writes would corrupt the code (and vice versa)".to_string(),
                ),
            });
        }
        // The dispatch lookup reads the vector table in bank 0, and the
        // fetches read the image's banks: all must be on at entry.
        let mut entry_banks = vec![0usize];
        let first = usize::from(isr_addr) / 0x0100;
        let last = (image_end.saturating_sub(1) as usize) / 0x0100;
        if image_end <= u32::from(map::MEM_SIZE) {
            entry_banks.extend(first..=last);
        }
        entry_banks.dedup();
        for bank in entry_banks {
            if bank >= 8 {
                continue;
            }
            let id = map::Component::mem_bank(bank);
            if walk.state[id as usize] == PowerState::Off {
                walk.diags.push(Diagnostic {
                    class: DiagClass::IsrBankGated,
                    offset: None,
                    insn: None,
                    message: format!(
                        "memory bank {bank} holding the vector table or ISR code is \
                         off at entry"
                    ),
                    note: Some("the dispatch lookup or fetch faults".to_string()),
                });
            }
        }
        if image_end > u32::from(map::MEM_SIZE) {
            walk.diags.push(Diagnostic {
                class: DiagClass::UnmappedAccess,
                offset: None,
                insn: None,
                message: format!(
                    "ISR image at 0x{isr_addr:04X}..0x{image_end:04X} extends past \
                     main memory (0x{:04X})",
                    map::MEM_SIZE
                ),
                note: Some("fetches past the end of memory fault".to_string()),
            });
        }
    }

    // The straight-line walk.
    for (off, insn) in &meta.insns {
        let off = *off;
        walk.cycles += insn.words() as u64; // FETCH: one cycle per word
        let mut stall = 0u64;
        match insn {
            Instruction::SwitchOn(c) | Instruction::SwitchOff(c) => {
                let id = c.raw();
                let on = matches!(insn, Instruction::SwitchOn(_));
                match map::Component::decode(id) {
                    None => walk.push(
                        DiagClass::BadPowerTarget,
                        Some(off),
                        Some(insn),
                        format!(
                            "switch{} of unassigned component id {id}",
                            if on { "on" } else { "off" }
                        ),
                        Some("only ids 0-5 and 8-15 are power-controllable".to_string()),
                    ),
                    Some((map::Component::Mcu, _)) => walk.push(
                        DiagClass::BadPowerTarget,
                        Some(off),
                        Some(insn),
                        format!(
                            "switch{} of the microcontroller",
                            if on { "on" } else { "off" }
                        ),
                        Some(if on {
                            "wake the microcontroller with `wakeup` so it has a vector"
                                .to_string()
                        } else {
                            "the microcontroller gates itself via SYS_MCU_SLEEP"
                                .to_string()
                        }),
                    ),
                    Some((comp, bank)) => {
                        let cur = walk.state[id as usize];
                        if on {
                            match cur {
                                PowerState::On => walk.push(
                                    DiagClass::RedundantSwitch,
                                    Some(off),
                                    Some(insn),
                                    format!("switchon of {}: already on", comp_name(id)),
                                    Some(
                                        "a no-op that still costs a fetch and execute \
                                         cycle"
                                            .to_string(),
                                    ),
                                ),
                                PowerState::Off | PowerState::Unknown => {
                                    stall = ctx.wake.of(comp, bank).0;
                                    if cur == PowerState::Off
                                        && !walk.turned_on.contains(&id)
                                    {
                                        walk.turned_on.push(id);
                                    }
                                }
                            }
                            walk.state[id as usize] = PowerState::On;
                        } else {
                            if cur == PowerState::Off {
                                walk.push(
                                    DiagClass::RedundantSwitch,
                                    Some(off),
                                    Some(insn),
                                    format!(
                                        "switchoff of {}: already off",
                                        comp_name(id)
                                    ),
                                    Some(
                                        "a no-op that still costs a fetch and execute \
                                         cycle"
                                            .to_string(),
                                    ),
                                );
                            }
                            walk.state[id as usize] = PowerState::Off;
                            if let Some(bank) = bank {
                                let next = usize::from(off) + insn.words();
                                walk.check_self_gate(
                                    bank,
                                    next,
                                    meta.consumed,
                                    off,
                                    insn,
                                );
                            }
                        }
                    }
                }
            }
            Instruction::Read(a) => walk.check_access(*a, false, off, insn),
            Instruction::Write(a) => walk.check_access(*a, true, off, insn),
            Instruction::WriteI { addr, .. } => walk.check_access(*addr, true, off, insn),
            Instruction::Transfer { src, dst, len } => {
                walk.check_transfer_range(*src, *len, false, off, insn);
                walk.check_transfer_range(*dst, *len, true, off, insn);
            }
            Instruction::Terminate => {}
            Instruction::Wakeup(v) => {
                // Two vector-table reads from main memory.
                for delta in 0..2u16 {
                    let addr = map::MCU_VECTORS + u16::from(*v) * 2 + delta;
                    walk.check_access(addr, false, off, insn);
                }
            }
        }
        walk.cycles += exec_cycles(insn, stall);
    }

    // Structural endings.
    if meta.truncated {
        walk.diags.push(Diagnostic {
            class: DiagClass::MissingTerminator,
            offset: Some(meta.consumed as u16),
            insn: None,
            message: format!(
                "instruction at +0x{:04X} is truncated ({} byte{} left)",
                meta.consumed,
                meta.trailing,
                if meta.trailing == 1 { "" } else { "s" }
            ),
            note: Some(
                "execution would fetch operands from whatever follows in memory"
                    .to_string(),
            ),
        });
    } else if !meta.terminated {
        walk.diags.push(Diagnostic {
            class: DiagClass::MissingTerminator,
            offset: Some(meta.consumed as u16),
            insn: None,
            message: "control runs off the end of the image without \
                      terminate/wakeup"
                .to_string(),
            note: Some(
                "the event processor keeps fetching whatever follows in memory"
                    .to_string(),
            ),
        });
    } else if meta.trailing > 0 {
        walk.diags.push(Diagnostic {
            class: DiagClass::TrailingBytes,
            offset: Some(meta.consumed as u16),
            insn: None,
            message: format!(
                "{} unreachable byte{} after the terminator",
                meta.trailing,
                if meta.trailing == 1 { "" } else { "s" }
            ),
            note: Some("dead footprint in the 2 KB main memory".to_string()),
        });
    }

    // Energy-leak check: components this ISR turned on and left on.
    let turned_on = walk.turned_on.clone();
    for id in turned_on {
        if walk.state[id as usize] == PowerState::On
            && !ctx.allowed_left_on.contains(&id)
        {
            walk.diags.push(Diagnostic {
                class: DiagClass::LeftOnAtExit,
                offset: None,
                insn: None,
                message: format!(
                    "{} switched on by this ISR is still on at exit",
                    comp_name(id)
                ),
                note: Some(
                    "declare an intentional hand-off in the check context or add a \
                     switchoff"
                        .to_string(),
                ),
            });
        }
    }

    // WCET: worst-case bus wait + 2-cycle lookup + fetch/execute walk.
    let wcet = ctx.max_bus_wait + 2 + walk.cycles;
    if let Some(budget) = ctx.wcet_budget {
        if wcet > budget {
            walk.diags.push(Diagnostic {
                class: DiagClass::WcetOverrun,
                offset: None,
                insn: None,
                message: format!(
                    "WCET {wcet} cycles exceeds the event-period budget {budget}"
                ),
                note: Some(
                    "a second event could arrive before this ISR retires".to_string(),
                ),
            });
        }
    }

    Report {
        name: ctx.name.clone(),
        irq: ctx.irq,
        insns: meta.insns.len(),
        bytes: bytes.len(),
        wcet,
        budget: ctx.wcet_budget,
        diags: walk.diags,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ulp_isa::ep::{encode_program, ComponentId, Instruction as I};

    fn cid(id: u8) -> ComponentId {
        ComponentId::new(id).unwrap()
    }

    fn check(prog: &[I], ctx: &CheckContext) -> Report {
        check_isr(&encode_program(prog).unwrap(), ctx)
    }

    fn classes(report: &Report) -> Vec<DiagClass> {
        report.diags.iter().map(|d| d.class).collect()
    }

    #[test]
    fn clean_minimal_isr() {
        let r = check(&[I::Terminate], &CheckContext::system_reset("t"));
        assert!(r.is_clean(), "{:?}", r.diags);
        assert_eq!(r.wcet, 4, "lookup 2 + fetch 1 + execute 1");
    }

    #[test]
    fn figure5_isr_is_clean_and_wcet_matches_simulated_cost() {
        // The paper's Figure 5 sample ISR, with the msgproc hand-off
        // declared (it must stay on until MsgReady fires).
        let prog = [
            I::SwitchOn(cid(4)),
            I::Read(map::SENSOR_BASE + map::SENSOR_DATA),
            I::SwitchOff(cid(4)),
            I::SwitchOn(cid(2)),
            I::Write(map::MSG_BASE + map::MSG_SAMPLE_IN),
            I::WriteI {
                addr: map::MSG_BASE + map::MSG_CTRL,
                value: 1,
            },
            I::Terminate,
        ];
        let ctx = CheckContext::system_reset("fig5")
            .with_irq(map::Irq::Timer0.id())
            .allow_left_on(2);
        let r = check(&prog, &ctx);
        assert!(r.is_clean(), "{:?}", r.diags);
        // 2 + (1+1+2) + (3+1) + (1+1) + (1+1+2) + (3+1) + (4+1) + (1+1) = 27
        assert_eq!(r.wcet, 27);
    }

    #[test]
    fn powered_off_access_flagged() {
        let r = check(
            &[I::Read(map::MSG_BASE + map::MSG_STATUS), I::Terminate],
            &CheckContext::system_reset("t"),
        );
        assert_eq!(classes(&r), vec![DiagClass::PoweredOffAccess]);
        assert!(r.has_fault_class());
        assert_eq!(r.diags[0].offset, Some(0));
    }

    #[test]
    fn entry_assumption_from_irq_source() {
        // Reading the sensor inside the SensorDone ISR is fine: the
        // conversion-complete interrupt proves the sensor is on.
        let prog = [
            I::Read(map::SENSOR_BASE + map::SENSOR_DATA),
            I::SwitchOff(cid(4)),
            I::Terminate,
        ];
        let base = CheckContext::system_reset("t");
        assert_eq!(
            classes(&check(&prog, &base)),
            vec![DiagClass::PoweredOffAccess, DiagClass::RedundantSwitch]
        );
        let r = check(&prog, &base.with_irq(map::Irq::SensorDone.id()));
        assert!(r.is_clean(), "{:?}", r.diags);
    }

    #[test]
    fn redundant_switches_flagged() {
        let r = check(
            &[
                I::SwitchOn(cid(0)),  // timer already on at reset
                I::SwitchOff(cid(4)), // sensor already off
                I::Terminate,
            ],
            &CheckContext::system_reset("t"),
        );
        assert_eq!(
            classes(&r),
            vec![DiagClass::RedundantSwitch, DiagClass::RedundantSwitch]
        );
        assert_eq!(r.warnings(), 2);
        assert_eq!(r.errors(), 0);
    }

    #[test]
    fn left_on_at_exit_flagged_and_waivable() {
        let prog = [
            I::SwitchOn(cid(4)),
            I::Read(map::SENSOR_BASE + map::SENSOR_DATA),
            I::Terminate,
        ];
        let r = check(&prog, &CheckContext::system_reset("t"));
        assert_eq!(classes(&r), vec![DiagClass::LeftOnAtExit]);
        let r = check(&prog, &CheckContext::system_reset("t").allow_left_on(4));
        assert!(r.is_clean());
        // Components that were already on (not turned on here) never
        // trigger the leak warning.
        let r = check(
            &[I::Read(map::TIMER_BASE + map::TIMER_COUNT_LO), I::Terminate],
            &CheckContext::system_reset("t"),
        );
        assert!(r.is_clean());
    }

    #[test]
    fn read_only_write_flagged() {
        let r = check(
            &[
                I::WriteI {
                    addr: map::TIMER_BASE + map::TIMER_COUNT_LO,
                    value: 1,
                },
                I::Terminate,
            ],
            &CheckContext::system_reset("t"),
        );
        assert_eq!(classes(&r), vec![DiagClass::ReadOnlyWrite]);
        assert!(!r.has_fault_class(), "writes are ignored, not faults");
    }

    #[test]
    fn unmapped_access_flagged() {
        let r = check(
            &[I::Read(0x0900), I::Terminate],
            &CheckContext::system_reset("t"),
        );
        assert_eq!(classes(&r), vec![DiagClass::UnmappedAccess]);
        assert!(r.has_fault_class());
    }

    #[test]
    fn transfer_bounds_flagged() {
        let ctx = CheckContext::system_reset("t")
            .assume(2, PowerState::On)
            .assume(3, PowerState::On);
        // Destination overruns the radio TX buffer by 8 bytes.
        let r = check(
            &[
                I::Transfer {
                    src: map::MSG_TX_BUF,
                    dst: map::RADIO_TX_BUF + 8,
                    len: 32,
                },
                I::Terminate,
            ],
            &ctx,
        );
        assert_eq!(classes(&r), vec![DiagClass::TransferBounds]);
        assert!(r.diags[0].message.contains("overruns the 32-byte buffer"));
        // Source crossing out of a register window.
        let r = check(
            &[
                I::Transfer {
                    src: map::SENSOR_BASE + 2,
                    dst: 0x0300,
                    len: 8,
                },
                I::Terminate,
            ],
            &CheckContext::system_reset("t").assume(4, PowerState::On),
        );
        assert_eq!(classes(&r), vec![DiagClass::TransferBounds]);
        assert!(r.diags[0].message.contains("crosses out of region"));
        // In-bounds block spanning two SRAM banks is legal.
        let r = check(
            &[
                I::Transfer {
                    src: 0x02F0,
                    dst: 0x0400,
                    len: 32,
                },
                I::Terminate,
            ],
            &CheckContext::system_reset("t"),
        );
        assert!(r.is_clean(), "{:?}", r.diags);
    }

    #[test]
    fn transfer_into_gated_bank_flagged() {
        let ctx = CheckContext::system_reset("t").assume(
            map::Component::mem_bank(4),
            PowerState::Off,
        );
        let r = check(
            &[
                I::Transfer {
                    src: 0x0300,
                    dst: 0x03F8, // crosses into gated bank 4
                    len: 16,
                },
                I::Terminate,
            ],
            &ctx,
        );
        assert_eq!(classes(&r), vec![DiagClass::PoweredOffAccess]);
    }

    #[test]
    fn bad_power_target_flagged() {
        let r = check(
            &[
                I::SwitchOn(cid(7)),
                I::SwitchOn(cid(5)),
                I::SwitchOff(cid(5)),
                I::Terminate,
            ],
            &CheckContext::system_reset("t"),
        );
        assert_eq!(
            classes(&r),
            vec![
                DiagClass::BadPowerTarget,
                DiagClass::BadPowerTarget,
                DiagClass::BadPowerTarget
            ]
        );
    }

    #[test]
    fn self_gating_flagged() {
        // ISR at 0x0200 (bank 2) switching bank 2 off mid-stream.
        let ctx = CheckContext::system_reset("t").with_isr_addr(0x0200);
        let r = check(
            &[
                I::SwitchOff(cid(map::Component::mem_bank(2))),
                I::Terminate,
            ],
            &ctx,
        );
        assert_eq!(classes(&r), vec![DiagClass::IsrBankGated]);
        // Gating an unrelated bank is fine.
        let r = check(
            &[
                I::SwitchOff(cid(map::Component::mem_bank(7))),
                I::Terminate,
            ],
            &ctx,
        );
        assert!(r.is_clean(), "{:?}", r.diags);
        // As the *last* instruction there is no remaining code in the
        // bank... but the terminator itself still has to be fetched, so
        // gating before the terminate is still flagged. Gated bank at
        // entry is the other variant.
        let r = check(
            &[I::Terminate],
            &CheckContext::system_reset("t")
                .with_isr_addr(0x0200)
                .assume(map::Component::mem_bank(2), PowerState::Off),
        );
        assert_eq!(classes(&r), vec![DiagClass::IsrBankGated]);
    }

    #[test]
    fn vector_overlap_flagged() {
        let r = check(
            &[I::Terminate],
            &CheckContext::system_reset("t").with_isr_addr(0x0080),
        );
        assert_eq!(classes(&r), vec![DiagClass::VectorOverlap]);
        assert!(!r.has_fault_class(), "overlap corrupts, not faults");
    }

    #[test]
    fn missing_terminator_and_trailing_bytes() {
        // Runs off the end.
        let r = check(&[I::Read(0x0300)], &CheckContext::system_reset("t"));
        assert_eq!(classes(&r), vec![DiagClass::MissingTerminator]);
        assert!(r.has_fault_class());
        // Truncated final instruction.
        let bytes = encode_program(&[I::Read(0x0300)]).unwrap();
        let r = check_isr(&bytes[..2], &CheckContext::system_reset("t"));
        assert_eq!(classes(&r), vec![DiagClass::MissingTerminator]);
        // Dead tail.
        let bytes =
            encode_program(&[I::Terminate, I::Read(0x0300), I::Terminate]).unwrap();
        let r = check_isr(&bytes, &CheckContext::system_reset("t"));
        assert_eq!(classes(&r), vec![DiagClass::TrailingBytes]);
        assert_eq!(r.warnings(), 1);
    }

    #[test]
    fn wcet_budget_checked() {
        let prog = [
            I::Transfer {
                src: 0x0300,
                dst: 0x0400,
                len: 8,
            },
            I::Terminate,
        ];
        // Simulator-verified cost of this exact program is 25 cycles.
        let r = check(&prog, &CheckContext::system_reset("t").with_budget(25));
        assert!(r.is_clean(), "{:?}", r.diags);
        assert_eq!(r.wcet, 25);
        let r = check(&prog, &CheckContext::system_reset("t").with_budget(24));
        assert_eq!(classes(&r), vec![DiagClass::WcetOverrun]);
        // Bus contention widens the bound.
        let mut ctx = CheckContext::system_reset("t").with_budget(30);
        ctx.max_bus_wait = 10;
        let r = check(&prog, &ctx);
        assert_eq!(r.wcet, 35);
        assert_eq!(classes(&r), vec![DiagClass::WcetOverrun]);
    }

    #[test]
    fn unknown_power_warns_and_costs_worst_case() {
        let ctx = CheckContext::system_reset("t").assume(3, PowerState::Unknown);
        let r = check(
            &[I::Read(map::RADIO_BASE + map::RADIO_STATUS), I::Terminate],
            &ctx,
        );
        assert_eq!(classes(&r), vec![DiagClass::UnknownPowerAccess]);
        assert_eq!(r.errors(), 0);
        // SWITCHON from Unknown charges the full handshake (radio: 4).
        let known = check(
            &[I::SwitchOn(cid(3)), I::Terminate],
            &CheckContext::system_reset("t").allow_left_on(3),
        );
        let unknown = check(
            &[I::SwitchOn(cid(3)), I::Terminate],
            &ctx.clone().allow_left_on(3),
        );
        assert_eq!(known.wcet, unknown.wcet);
        assert!(unknown.is_clean(), "{:?}", unknown.diags);
    }

    #[test]
    fn wakeup_vector_reads_checked() {
        // Vector 2's table entry lives in bank 0 — gated bank 0 faults
        // the wakeup's vector read.
        let ctx = CheckContext::system_reset("t").assume(
            map::Component::mem_bank(0),
            PowerState::Off,
        );
        let r = check(&[I::Wakeup(2)], &ctx);
        assert_eq!(
            classes(&r),
            vec![DiagClass::PoweredOffAccess, DiagClass::PoweredOffAccess]
        );
        assert_eq!(check(&[I::Wakeup(2)], &CheckContext::system_reset("t")).wcet, 6);
    }

    #[test]
    fn diagnostics_are_in_program_order() {
        let prog = [
            I::Read(0x0900),                              // unmapped
            I::WriteI { addr: map::SENSOR_BASE + map::SENSOR_DATA, value: 1 }, // off + RO
            I::Terminate,
        ];
        let r = check(&prog, &CheckContext::system_reset("t"));
        assert_eq!(
            classes(&r),
            vec![
                DiagClass::UnmappedAccess,
                DiagClass::PoweredOffAccess,
                DiagClass::ReadOnlyWrite
            ]
        );
        let offs: Vec<_> = r.diags.iter().map(|d| d.offset).collect();
        assert_eq!(offs, vec![Some(0), Some(3), Some(3)]);
    }

    #[test]
    fn empty_image_is_a_missing_terminator() {
        let r = check_isr(&[], &CheckContext::system_reset("t"));
        assert_eq!(classes(&r), vec![DiagClass::MissingTerminator]);
        assert_eq!(r.insns, 0);
    }
}
