//! CFG recovery from the predecoded instruction table.
//!
//! Functions are discovered from a worklist of entry points (vector
//! slots plus declared indirect-call targets); call instructions seed
//! new functions rather than edges, so each function gets its own
//! basic-block graph and the call structure forms a separate call
//! graph. Indirect control flow is either resolved against the
//! declared target list (`icall`) or rejected with a precise
//! diagnostic (`ijmp`, undeclared `icall`).

use std::collections::{BTreeMap, BTreeSet};
use ulp_mcu8::{DecodedInsn, Insn, Predecoded};

/// Outgoing edge of a basic block. `extra` is the cycle surcharge the
/// edge itself costs (branch taken +1; skip edges pay for the skipped
/// instruction's words).
#[derive(Debug, Clone, Copy)]
pub(super) struct Edge {
    pub to: usize,
    pub extra: u8,
}

/// How a block's instruction run ends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(super) enum Term {
    /// Falls into (or jumps to) successor blocks.
    Flow,
    /// `ret` — function exit.
    Ret,
    /// `reti` — interrupt exit.
    Reti,
    /// `break` or an invalid encoding — the CPU halts.
    Halt,
    /// `ijmp` or an unresolvable path — analysis cannot continue.
    Cut,
}

/// A basic block: a maximal single-entry straight-line instruction run.
#[derive(Debug, Clone)]
pub(super) struct Block {
    /// First word address.
    pub start: u16,
    /// The instructions, in order, with their word addresses.
    pub insns: Vec<(u16, DecodedInsn)>,
    /// Successor edges (within the same function).
    pub succs: Vec<Edge>,
    pub term: Term,
}

impl Block {
    /// One-past-the-end word address.
    pub fn end(&self) -> u16 {
        match self.insns.last() {
            Some((a, d)) => a + u16::from(d.words),
            None => self.start,
        }
    }
}

/// A call instruction inside a function.
#[derive(Debug, Clone)]
pub(super) struct CallSite {
    /// Word address of the call instruction.
    pub addr: u16,
    /// Resolved callee entries (several for a declared `icall`);
    /// empty means unresolved.
    pub targets: Vec<u16>,
}

/// One discovered function: entry address plus its block graph.
#[derive(Debug, Clone)]
pub(super) struct Function {
    pub entry: u16,
    /// Blocks sorted by start address; `block_at[entry]` is the entry
    /// block.
    pub blocks: Vec<Block>,
    pub block_at: BTreeMap<u16, usize>,
    pub calls: Vec<CallSite>,
}

/// A structural problem found during recovery, before the analyses
/// proper run.
#[derive(Debug, Clone)]
pub(super) struct RawDiag {
    pub class: super::FwDiagClass,
    /// Word address.
    pub addr: u16,
    pub insn: Option<String>,
    pub message: String,
    pub note: Option<String>,
}

/// The recovered whole-image CFG.
#[derive(Debug, Clone)]
pub(super) struct Cfg {
    pub functions: Vec<Function>,
    pub func_at: BTreeMap<u16, usize>,
    pub diags: Vec<RawDiag>,
}

impl Cfg {
    /// Callee function indices of `f`, deduplicated, in entry order.
    pub fn callees(&self, f: usize) -> Vec<usize> {
        let mut out = BTreeSet::new();
        for call in &self.functions[f].calls {
            for t in &call.targets {
                if let Some(&idx) = self.func_at.get(t) {
                    out.insert(idx);
                }
            }
        }
        out.into_iter().collect()
    }
}

/// Conditional skip instructions: the *next* instruction may be
/// skipped, costing its word count (plus fetch penalty) in cycles.
fn is_skip(insn: &Insn) -> bool {
    matches!(
        insn,
        Insn::Cpse { .. }
            | Insn::Sbrc { .. }
            | Insn::Sbrs { .. }
            | Insn::Sbic { .. }
            | Insn::Sbis { .. }
    )
}

/// Recover every function reachable from `entries`.
pub(super) fn recover(
    table: &Predecoded,
    image_words: usize,
    entries: &[u16],
    indirect_targets: &[u16],
    fetch_penalty: u8,
) -> Cfg {
    let mut cfg = Cfg {
        functions: Vec::new(),
        func_at: BTreeMap::new(),
        diags: Vec::new(),
    };
    let mut pending: BTreeSet<u16> = entries.iter().copied().collect();
    while let Some(entry) = pending.pop_first() {
        if cfg.func_at.contains_key(&entry) {
            continue;
        }
        if entry as usize >= image_words {
            cfg.diags.push(RawDiag {
                class: super::FwDiagClass::RunsOffImage,
                addr: entry,
                insn: None,
                message: format!(
                    "entry point 0x{:04X} is outside the {image_words}-word image",
                    u32::from(entry) * 2
                ),
                note: None,
            });
            continue;
        }
        let func = build_function(
            table,
            image_words,
            entry,
            indirect_targets,
            fetch_penalty,
            &mut cfg.diags,
        );
        for call in &func.calls {
            for t in &call.targets {
                pending.insert(*t);
            }
        }
        cfg.func_at.insert(entry, cfg.functions.len());
        cfg.functions.push(func);
    }
    cfg
}

/// Build one function's block graph by exploring from `entry`.
fn build_function(
    table: &Predecoded,
    image_words: usize,
    entry: u16,
    indirect_targets: &[u16],
    fetch_penalty: u8,
    diags: &mut Vec<RawDiag>,
) -> Function {
    // Phase 1: find leaders (block starts) by walking linear runs.
    let mut leaders: BTreeSet<u16> = BTreeSet::from([entry]);
    let mut explore: Vec<u16> = vec![entry];
    let mut visited_runs: BTreeSet<u16> = BTreeSet::new();
    let in_image = |a: u16| (a as usize) < image_words;
    while let Some(start) = explore.pop() {
        if !visited_runs.insert(start) {
            continue;
        }
        let mut pc = start;
        let mut steps = 0usize;
        loop {
            // A full-address-space image could let a nop sled wrap PC
            // forever; the step bound cuts that (diagnosed in phase 2).
            if !in_image(pc) || steps > image_words {
                break;
            }
            steps += 1;
            let d = table.get(pc);
            let next = pc.wrapping_add(u16::from(d.words));
            let mut branch_to = |t: u16| {
                leaders.insert(t);
                explore.push(t);
            };
            match d.insn {
                Insn::Rjmp { k } => {
                    branch_to(next.wrapping_add(k as u16));
                    break;
                }
                Insn::Jmp { addr } => {
                    branch_to(addr);
                    break;
                }
                Insn::Brbs { k, .. } | Insn::Brbc { k, .. } => {
                    branch_to(next.wrapping_add(k as u16));
                    branch_to(next);
                    break;
                }
                _ if is_skip(&d.insn) => {
                    let skipped = table.get(next);
                    branch_to(next.wrapping_add(u16::from(skipped.words)));
                    branch_to(next);
                    break;
                }
                Insn::Ret | Insn::Reti | Insn::Break | Insn::Invalid(_) | Insn::Ijmp => break,
                _ => pc = next,
            }
        }
    }

    // Phase 2: materialize blocks between leaders.
    let leaders: Vec<u16> = leaders.into_iter().filter(|a| in_image(*a)).collect();
    let leader_set: BTreeSet<u16> = leaders.iter().copied().collect();
    let mut blocks: Vec<Block> = Vec::new();
    let mut block_at: BTreeMap<u16, usize> = BTreeMap::new();
    let mut calls: Vec<CallSite> = Vec::new();
    // Successors recorded as word addresses first, resolved to block
    // ids once all blocks exist.
    let mut raw_succs: Vec<Vec<(u16, u8)>> = Vec::new();
    for &start in &leaders {
        let id = blocks.len();
        block_at.insert(start, id);
        let mut insns = Vec::new();
        let mut succs: Vec<(u16, u8)> = Vec::new();
        let mut term = Term::Flow;
        let mut pc = start;
        let mut steps = 0usize;
        loop {
            if !in_image(pc) || steps > image_words {
                let at = insns.last().map(|&(a, _)| a).unwrap_or(start);
                diags.push(RawDiag {
                    class: super::FwDiagClass::RunsOffImage,
                    addr: at,
                    insn: None,
                    message: format!(
                        "execution runs past the end of the {image_words}-word image at 0x{:04X}",
                        u32::from(pc) * 2
                    ),
                    note: Some(
                        "zero-filled memory decodes as an endless nop sled".to_string(),
                    ),
                });
                term = Term::Cut;
                break;
            }
            steps += 1;
            let d = table.get(pc);
            let next = pc.wrapping_add(u16::from(d.words));
            insns.push((pc, d));
            match d.insn {
                Insn::Rjmp { k } => {
                    succs.push((next.wrapping_add(k as u16), 0));
                    break;
                }
                Insn::Jmp { addr } => {
                    succs.push((addr, 0));
                    break;
                }
                Insn::Brbs { k, .. } | Insn::Brbc { k, .. } => {
                    // Taken costs one extra cycle.
                    succs.push((next.wrapping_add(k as u16), 1));
                    succs.push((next, 0));
                    break;
                }
                _ if is_skip(&d.insn) => {
                    let skipped = table.get(next);
                    // Skipping pays for the skipped instruction's words
                    // (each costing a cycle plus the fetch penalty).
                    succs.push((
                        next.wrapping_add(u16::from(skipped.words)),
                        skipped.words * (1 + fetch_penalty),
                    ));
                    succs.push((next, 0));
                    break;
                }
                Insn::Ret => {
                    term = Term::Ret;
                    break;
                }
                Insn::Reti => {
                    term = Term::Reti;
                    break;
                }
                Insn::Break => {
                    term = Term::Halt;
                    break;
                }
                Insn::Invalid(w) => {
                    diags.push(RawDiag {
                        class: super::FwDiagClass::InvalidOpcode,
                        addr: pc,
                        insn: Some(d.insn.to_string()),
                        message: format!("reachable word 0x{w:04X} decodes as no instruction"),
                        note: Some("executing it halts the CPU".to_string()),
                    });
                    term = Term::Halt;
                    break;
                }
                Insn::Ijmp => {
                    diags.push(RawDiag {
                        class: super::FwDiagClass::UnresolvedIndirect,
                        addr: pc,
                        insn: Some(d.insn.to_string()),
                        message: "indirect jump target cannot be recovered statically".to_string(),
                        note: Some(
                            "the analyzer follows `icall` only through declared targets; \
                             `ijmp` is always rejected"
                                .to_string(),
                        ),
                    });
                    term = Term::Cut;
                    break;
                }
                Insn::Rcall { k } => {
                    calls.push(CallSite {
                        addr: pc,
                        targets: vec![next.wrapping_add(k as u16)],
                    });
                }
                Insn::Call { addr } => {
                    calls.push(CallSite {
                        addr: pc,
                        targets: vec![addr],
                    });
                }
                Insn::Icall => {
                    if indirect_targets.is_empty() {
                        diags.push(RawDiag {
                            class: super::FwDiagClass::UnresolvedIndirect,
                            addr: pc,
                            insn: Some(d.insn.to_string()),
                            message: "indirect call with no declared targets".to_string(),
                            note: Some(
                                "declare the possible targets (task entry points) in the \
                                 firmware config so the analyzer can bound them"
                                    .to_string(),
                            ),
                        });
                    }
                    calls.push(CallSite {
                        addr: pc,
                        targets: indirect_targets.to_vec(),
                    });
                }
                _ => {}
            }
            if term != Term::Flow {
                break;
            }
            // Fallthrough into the next leader ends the block.
            if leader_set.contains(&next) {
                succs.push((next, 0));
                break;
            }
            pc = next;
        }
        blocks.push(Block {
            start,
            insns,
            succs: Vec::new(),
            term,
        });
        raw_succs.push(succs);
    }

    // Resolve successor addresses to block ids; targets outside the
    // image were already diagnosed in phase 1.
    for (id, succ) in raw_succs.into_iter().enumerate() {
        for (addr, extra) in succ {
            if let Some(&to) = block_at.get(&addr) {
                blocks[id].succs.push(Edge { to, extra });
            } else {
                diags.push(RawDiag {
                    class: super::FwDiagClass::RunsOffImage,
                    addr: blocks[id].insns.last().map(|(a, _)| *a).unwrap_or(addr),
                    insn: blocks[id].insns.last().map(|(_, d)| d.insn.to_string()),
                    message: format!(
                        "control transfers to 0x{:04X}, outside the {image_words}-word image",
                        u32::from(addr) * 2
                    ),
                    note: Some("zero-filled memory decodes as an endless nop sled".to_string()),
                });
                blocks[id].term = Term::Cut;
            }
        }
    }

    Function {
        entry,
        blocks,
        block_at,
        calls,
    }
}
