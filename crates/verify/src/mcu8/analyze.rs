//! The firmware analyses: abstract interpretation for stack depth and
//! register/flag preservation, interprocedural interrupt-flag
//! tracking, and loop-bounded WCET — all over the recovered CFG.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use ulp_mcu8::{Insn, Predecoded, PtrMode};

use super::cfg::{self, Cfg, Function, RawDiag, Term};
use super::{
    EntryReport, FirmwareConfig, FirmwareReport, FwDiagClass, FwDiagnostic, VectorDispatch,
    WcetBound,
};

const IO_SPL: u8 = 0x3D;
const IO_SPH: u8 = 0x3E;
const IO_SREG: u8 = 0x3F;

// ---------------------------------------------------------------------
// Abstract domain
// ---------------------------------------------------------------------

/// What a register (or stack slot) holds relative to function entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Val {
    /// The entry value of register `n`, unmodified.
    Orig(u8),
    /// The entry value of `SREG` (read via `in rX, 0x3F`).
    SregOrig,
    /// Anything else.
    Other,
}

/// The interrupt-enable flag, relative to function entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum IVal {
    /// Still whatever it was at entry.
    Orig,
    Set,
    Clear,
    Unknown,
}

impl IVal {
    fn join(self, other: IVal) -> IVal {
        if self == other {
            self
        } else {
            IVal::Unknown
        }
    }

    /// Resolve relative to a concrete entry state.
    fn resolve(self, entry: IVal) -> IVal {
        match self {
            IVal::Orig => entry,
            v => v,
        }
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct AbsState {
    regs: [Val; 32],
    /// Whether `SREG` (all flags) still holds its entry value.
    sreg_orig: bool,
    i: IVal,
    /// Abstract stack contents, bottom first (one entry per byte).
    stack: Vec<Val>,
}

impl AbsState {
    fn entry() -> AbsState {
        let mut regs = [Val::Other; 32];
        for (n, r) in regs.iter_mut().enumerate() {
            *r = Val::Orig(n as u8);
        }
        AbsState {
            regs,
            sreg_orig: true,
            i: IVal::Orig,
            stack: Vec::new(),
        }
    }

    /// `None` when the stack heights disagree (push/pop imbalance).
    fn join(&self, other: &AbsState) -> Option<AbsState> {
        if self.stack.len() != other.stack.len() {
            return None;
        }
        let mut out = self.clone();
        for (a, b) in out.regs.iter_mut().zip(other.regs.iter()) {
            if *a != *b {
                *a = Val::Other;
            }
        }
        out.sreg_orig = self.sreg_orig && other.sreg_orig;
        out.i = self.i.join(other.i);
        for (a, b) in out.stack.iter_mut().zip(other.stack.iter()) {
            if *a != *b {
                *a = Val::Other;
            }
        }
        Some(out)
    }
}

// ---------------------------------------------------------------------
// Function summaries
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
struct Summary {
    /// Registers whose exit value may differ from their entry value.
    clobbered: [bool; 32],
    /// Whether `SREG` flags may be clobbered at exit.
    sreg_clobbered: bool,
    /// Net effect on the I flag (`Orig` = transparent).
    i_effect: IVal,
    /// Worst-case bytes pushed below the entry SP, including transient
    /// callee frames.
    max_stack: u32,
    /// `false` when recursion or an unresolved indirect call makes the
    /// stack bound unknowable.
    stack_known: bool,
    wcet: WcetBound,
    /// `sleep` sites with the symbolic I state reaching them.
    sleep_sites: Vec<(u16, IVal)>,
    /// `sei` sites (word addresses).
    sei_sites: Vec<u16>,
    /// Call sites: (address, callee entries, symbolic I state there).
    call_sites: Vec<(u16, Vec<u16>, IVal)>,
    /// Word addresses of loop headers the bounder gave up on.
    unbounded_loops: Vec<u16>,
}

impl Summary {
    /// The sound fallback for functions in a recursive cycle.
    fn conservative() -> Summary {
        Summary {
            clobbered: [true; 32],
            sreg_clobbered: true,
            i_effect: IVal::Unknown,
            max_stack: 0,
            stack_known: false,
            wcet: WcetBound::Unbounded,
            sleep_sites: Vec::new(),
            sei_sites: Vec::new(),
            call_sites: Vec::new(),
            unbounded_loops: Vec::new(),
        }
    }
}

/// Union of several callee summaries, for `icall` through a declared
/// target set. An empty target set yields the conservative summary.
fn union_summary(targets: &[u16], cfg: &Cfg, summaries: &BTreeMap<u16, Summary>) -> Summary {
    let mut out: Option<Summary> = None;
    for t in targets {
        if !cfg.func_at.contains_key(t) {
            continue;
        }
        let s = &summaries[t];
        match &mut out {
            None => out = Some(s.clone()),
            Some(acc) => {
                for (a, b) in acc.clobbered.iter_mut().zip(s.clobbered.iter()) {
                    *a |= *b;
                }
                acc.sreg_clobbered |= s.sreg_clobbered;
                acc.i_effect = acc.i_effect.join(s.i_effect);
                acc.max_stack = acc.max_stack.max(s.max_stack);
                acc.stack_known &= s.stack_known;
                acc.wcet = acc.wcet.join_max(s.wcet);
            }
        }
    }
    out.unwrap_or_else(Summary::conservative)
}

// ---------------------------------------------------------------------
// Instruction classification
// ---------------------------------------------------------------------

/// Raw register writes of one instruction (callee effects excluded).
fn reg_writes(insn: &Insn) -> Vec<u8> {
    let ptr_pair = |p: ulp_mcu8::Ptr| vec![p.lo() as u8, p.lo() as u8 + 1];
    match *insn {
        Insn::Add { d, .. }
        | Insn::Adc { d, .. }
        | Insn::Sub { d, .. }
        | Insn::Sbc { d, .. }
        | Insn::And { d, .. }
        | Insn::Or { d, .. }
        | Insn::Eor { d, .. }
        | Insn::Mov { d, .. }
        | Insn::Subi { d, .. }
        | Insn::Sbci { d, .. }
        | Insn::Andi { d, .. }
        | Insn::Ori { d, .. }
        | Insn::Ldi { d, .. }
        | Insn::Com { d }
        | Insn::Neg { d }
        | Insn::Swap { d }
        | Insn::Inc { d }
        | Insn::Dec { d }
        | Insn::Asr { d }
        | Insn::Lsr { d }
        | Insn::Ror { d }
        | Insn::Lds { d, .. }
        | Insn::Pop { d }
        | Insn::In { d, .. }
        | Insn::Bld { d, .. }
        | Insn::Ldd { d, .. } => vec![d],
        Insn::Movw { d, .. } | Insn::Adiw { d, .. } | Insn::Sbiw { d, .. } => vec![d, d + 1],
        Insn::Mul { .. } => vec![0, 1],
        Insn::Ld { d, ptr, mode } => {
            let mut v = vec![d];
            if mode != PtrMode::Plain {
                v.extend(ptr_pair(ptr));
            }
            v
        }
        Insn::St { ptr, mode, .. } => {
            if mode != PtrMode::Plain {
                ptr_pair(ptr)
            } else {
                Vec::new()
            }
        }
        _ => Vec::new(),
    }
}

/// Whether the instruction writes `SREG` flags (I handled separately).
fn writes_flags(insn: &Insn) -> bool {
    matches!(
        insn,
        Insn::Add { .. }
            | Insn::Adc { .. }
            | Insn::Sub { .. }
            | Insn::Sbc { .. }
            | Insn::And { .. }
            | Insn::Or { .. }
            | Insn::Eor { .. }
            | Insn::Com { .. }
            | Insn::Neg { .. }
            | Insn::Inc { .. }
            | Insn::Dec { .. }
            | Insn::Asr { .. }
            | Insn::Lsr { .. }
            | Insn::Ror { .. }
            | Insn::Adiw { .. }
            | Insn::Sbiw { .. }
            | Insn::Subi { .. }
            | Insn::Sbci { .. }
            | Insn::Andi { .. }
            | Insn::Ori { .. }
            | Insn::Cpi { .. }
            | Insn::Cp { .. }
            | Insn::Cpc { .. }
            | Insn::Mul { .. }
            | Insn::Bst { .. }
            | Insn::Bset { .. }
            | Insn::Bclr { .. }
    )
}

// ---------------------------------------------------------------------
// Per-function dataflow
// ---------------------------------------------------------------------

struct FlowResult {
    summary: Summary,
    /// Join points (block starts) where stack heights disagreed, and
    /// returns executed with bytes still pushed.
    imbalances: Vec<u16>,
}

/// One instruction's effect on the abstract state. Returns `false` if
/// a pop underflowed (recorded by the caller as an imbalance).
fn transfer(
    state: &mut AbsState,
    insn: &Insn,
    callee: Option<&Summary>,
) -> bool {
    let mut ok = true;
    match *insn {
        Insn::Mov { d, r } => state.regs[d as usize] = state.regs[r as usize],
        Insn::Movw { d, r } => {
            state.regs[d as usize] = state.regs[r as usize];
            state.regs[d as usize + 1] = state.regs[r as usize + 1];
        }
        Insn::Push { r } => state.stack.push(state.regs[r as usize]),
        Insn::Pop { d } => {
            state.regs[d as usize] = match state.stack.pop() {
                Some(v) => v,
                None => {
                    ok = false;
                    Val::Other
                }
            }
        }
        Insn::In { d, a } => {
            state.regs[d as usize] = if a == IO_SREG && state.sreg_orig {
                Val::SregOrig
            } else {
                Val::Other
            };
        }
        Insn::Out { a, r } => match a {
            IO_SREG => {
                let restored = state.regs[r as usize] == Val::SregOrig;
                state.sreg_orig = restored;
                state.i = if restored { IVal::Orig } else { IVal::Unknown };
            }
            IO_SPL | IO_SPH => state.stack.clear(),
            _ => {}
        },
        Insn::Bset { s } => {
            state.sreg_orig = false;
            if s == 7 {
                state.i = IVal::Set;
            }
        }
        Insn::Bclr { s } => {
            state.sreg_orig = false;
            if s == 7 {
                state.i = IVal::Clear;
            }
        }
        Insn::Rcall { .. } | Insn::Call { .. } | Insn::Icall => {
            let summary = callee.expect("call sites carry a callee summary");
            for (n, clob) in summary.clobbered.iter().enumerate() {
                if *clob {
                    state.regs[n] = Val::Other;
                }
            }
            if summary.sreg_clobbered {
                state.sreg_orig = false;
            }
            match summary.i_effect {
                IVal::Orig => {}
                eff => state.i = eff.resolve(state.i),
            }
        }
        ref other => {
            for n in reg_writes(other) {
                state.regs[n as usize] = Val::Other;
            }
            if writes_flags(other) {
                state.sreg_orig = false;
            }
        }
    }
    ok
}

/// Fixpoint dataflow over one function, producing its summary (WCET
/// filled in separately).
fn flow_function(
    func: &Function,
    cfg: &Cfg,
    summaries: &BTreeMap<u16, Summary>,
) -> FlowResult {
    let n = func.blocks.len();
    let call_at: BTreeMap<u16, &Vec<u16>> =
        func.calls.iter().map(|c| (c.addr, &c.targets)).collect();
    let callee_summary = |targets: &[u16]| union_summary(targets, cfg, summaries);

    let mut in_states: Vec<Option<AbsState>> = vec![None; n];
    let entry_block = func.block_at[&func.entry];
    in_states[entry_block] = Some(AbsState::entry());
    let mut imbalances: BTreeSet<u16> = BTreeSet::new();
    let mut work: VecDeque<usize> = VecDeque::from([entry_block]);
    let mut queued = vec![false; n];
    queued[entry_block] = true;

    while let Some(b) = work.pop_front() {
        queued[b] = false;
        let Some(mut state) = in_states[b].clone() else {
            continue;
        };
        let block = &func.blocks[b];
        for (addr, d) in &block.insns {
            let callee = call_at.get(addr).map(|t| callee_summary(t));
            if !transfer(&mut state, &d.insn, callee.as_ref()) {
                imbalances.insert(*addr);
            }
        }
        if matches!(block.term, Term::Ret | Term::Reti) && !state.stack.is_empty() {
            imbalances.insert(block.insns.last().map(|&(a, _)| a).unwrap_or(block.start));
        }
        for edge in &block.succs {
            let next = match &in_states[edge.to] {
                None => Some(state.clone()),
                Some(prev) => match prev.join(&state) {
                    Some(joined) if &joined != prev => Some(joined),
                    Some(_) => None,
                    None => {
                        imbalances.insert(func.blocks[edge.to].start);
                        None
                    }
                },
            };
            if let Some(next) = next {
                in_states[edge.to] = Some(next);
                if !queued[edge.to] {
                    queued[edge.to] = true;
                    work.push_back(edge.to);
                }
            }
        }
    }

    // Final walk: exit join, max depth, and per-site records.
    let mut exit: Option<AbsState> = None;
    let mut max_stack = 0u32;
    let mut stack_known = true;
    let mut sleep_sites = Vec::new();
    let mut sei_sites = Vec::new();
    let mut call_sites = Vec::new();
    for (b, block) in func.blocks.iter().enumerate() {
        let Some(mut state) = in_states[b].clone() else {
            continue; // unreachable under the (diagnosed) imbalance
        };
        for (addr, d) in &block.insns {
            match d.insn {
                Insn::Sleep => sleep_sites.push((*addr, state.i)),
                Insn::Bset { s: 7 } => sei_sites.push(*addr),
                Insn::Rcall { .. } | Insn::Call { .. } | Insn::Icall => {
                    let targets = call_at[addr];
                    let callee = callee_summary(targets);
                    if !callee.stack_known {
                        stack_known = false;
                    }
                    max_stack =
                        max_stack.max(state.stack.len() as u32 + 2 + callee.max_stack);
                    call_sites.push((*addr, (*targets).clone(), state.i));
                }
                _ => {}
            }
            let callee = call_at.get(addr).map(|t| callee_summary(t));
            let _ = transfer(&mut state, &d.insn, callee.as_ref());
            max_stack = max_stack.max(state.stack.len() as u32);
        }
        if matches!(block.term, Term::Ret | Term::Reti) {
            exit = match exit {
                None => Some(state),
                // Height mismatch across exits falls back to the
                // previous state: the imbalance is already recorded.
                Some(prev) => Some(prev.join(&state).unwrap_or(prev)),
            };
        }
    }

    let mut clobbered = [false; 32];
    let mut sreg_clobbered = false;
    let mut i_effect = IVal::Orig;
    if let Some(exit) = &exit {
        for (n, c) in clobbered.iter_mut().enumerate() {
            *c = exit.regs[n] != Val::Orig(n as u8);
        }
        sreg_clobbered = !exit.sreg_orig;
        i_effect = exit.i;
    }
    // Unresolved indirect calls poison the stack bound.
    for c in &func.calls {
        if c.targets.is_empty() {
            stack_known = false;
        }
    }

    FlowResult {
        summary: Summary {
            clobbered,
            sreg_clobbered,
            i_effect,
            max_stack,
            stack_known,
            wcet: WcetBound::Unbounded, // filled in by wcet_function
            sleep_sites,
            sei_sites,
            call_sites,
            unbounded_loops: Vec::new(),
        },
        imbalances: imbalances.into_iter().collect(),
    }
}

// ---------------------------------------------------------------------
// WCET
// ---------------------------------------------------------------------

/// Loop-bounded WCET for one function: collapse immediate-counted
/// loops innermost-first, then take the longest path over the DAG.
/// Returns the bound plus the headers of loops it could not bound.
fn wcet_function(
    func: &Function,
    cfg: &Cfg,
    summaries: &BTreeMap<u16, Summary>,
    penalty: u8,
) -> (WcetBound, Vec<u16>) {
    let n = func.blocks.len();
    let call_at: BTreeMap<u16, &Vec<u16>> =
        func.calls.iter().map(|c| (c.addr, &c.targets)).collect();

    // Base block costs.
    let mut cost: Vec<WcetBound> = func
        .blocks
        .iter()
        .map(|b| {
            let mut c = WcetBound::Exact(0);
            for (addr, d) in &b.insns {
                c = c.add_cycles(u64::from(d.cycles) + u64::from(d.words) * u64::from(penalty));
                if let Some(targets) = call_at.get(addr) {
                    c = c.add(union_summary(targets, cfg, summaries).wcet);
                }
            }
            c
        })
        .collect();
    let mut succs: Vec<Vec<cfg::Edge>> = func.blocks.iter().map(|b| b.succs.clone()).collect();

    // DFS back-edge detection from the entry block.
    let entry = func.block_at[&func.entry];
    let mut back_edges: Vec<(usize, usize)> = Vec::new(); // (from, header)
    {
        #[derive(Clone, Copy, PartialEq)]
        enum Color {
            White,
            Grey,
            Black,
        }
        let mut color = vec![Color::White; n];
        // Iterative DFS with an explicit edge iterator per frame.
        let mut stack: Vec<(usize, usize)> = vec![(entry, 0)];
        color[entry] = Color::Grey;
        while let Some(&mut (b, ref mut i)) = stack.last_mut() {
            if *i < succs[b].len() {
                let to = succs[b][*i].to;
                *i += 1;
                match color[to] {
                    Color::White => {
                        color[to] = Color::Grey;
                        stack.push((to, 0));
                    }
                    Color::Grey => back_edges.push((b, to)),
                    Color::Black => {}
                }
            } else {
                color[b] = Color::Black;
                stack.pop();
            }
        }
    }

    // Natural loop membership per back edge.
    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (b, s) in succs.iter().enumerate() {
        for e in s {
            preds[e.to].push(b);
        }
    }
    let natural_loop = |latch: usize, header: usize, preds: &[Vec<usize>]| -> BTreeSet<usize> {
        let mut set = BTreeSet::from([header, latch]);
        let mut work = vec![latch];
        while let Some(b) = work.pop() {
            if b == header {
                continue;
            }
            for &p in &preds[b] {
                if set.insert(p) {
                    work.push(p);
                }
            }
        }
        set
    };
    let mut loops: Vec<(usize, usize, BTreeSet<usize>)> = back_edges
        .iter()
        .map(|&(latch, header)| (latch, header, natural_loop(latch, header, &preds)))
        .collect();
    loops.sort_by_key(|(latch, header, set)| (set.len(), *header, *latch));

    let mut unbounded: Vec<u16> = Vec::new();
    let mut approx = false;
    for (latch, header, members) in &loops {
        match bound_counted_loop(
            func, cfg, summaries, &call_at, *latch, *header, members, &succs, &preds, &cost,
        ) {
            Some((k, body, body_conditional)) => {
                // K-1 full iterations pay the body plus the taken back
                // edge; the final iteration flows through the DAG path.
                let per_iter = body.add_cycles(1);
                let surcharge = mul(per_iter, k - 1);
                cost[*header] = cost[*header].add(surcharge);
                succs[*latch].retain(|e| e.to != *header);
                if body_conditional {
                    approx = true;
                }
            }
            None => {
                unbounded.push(func.blocks[*header].start);
                // Cut the back edge anyway so the longest-path pass
                // terminates; the bound is Unbounded regardless.
                succs[*latch].retain(|e| e.to != *header);
            }
        }
    }

    // Longest path over the remaining graph (must now be a DAG).
    let order = match topo_order(entry, &succs, n) {
        Some(o) => o,
        None => return (WcetBound::Unbounded, unbounded),
    };
    let mut dist: Vec<Option<WcetBound>> = vec![None; n];
    dist[entry] = Some(WcetBound::Exact(0));
    let mut total: Option<WcetBound> = None;
    for &b in &order {
        let Some(d) = dist[b] else { continue };
        let here = d.add(cost[b]);
        if succs[b].is_empty() {
            total = Some(match total {
                None => here,
                Some(t) => t.join_max(here),
            });
        }
        if succs[b].len() > 1 {
            approx = true;
        }
        for e in &succs[b] {
            let via = here.add_cycles(u64::from(e.extra));
            dist[e.to] = Some(match dist[e.to] {
                None => via,
                Some(prev) => prev.join_max(via),
            });
        }
    }
    let mut wcet = if unbounded.is_empty() {
        total.unwrap_or(WcetBound::Unbounded)
    } else {
        WcetBound::Unbounded
    };
    if approx {
        if let WcetBound::Exact(c) = wcet {
            wcet = WcetBound::UpperBound(c);
        }
    }
    (wcet, unbounded)
}

fn mul(bound: WcetBound, k: u64) -> WcetBound {
    match bound {
        WcetBound::Exact(c) => WcetBound::Exact(c * k),
        WcetBound::UpperBound(c) => WcetBound::UpperBound(c * k),
        WcetBound::Unbounded => WcetBound::Unbounded,
    }
}

/// Kahn topological order of the blocks reachable from `entry`, or
/// `None` if a cycle survives.
fn topo_order(entry: usize, succs: &[Vec<cfg::Edge>], n: usize) -> Option<Vec<usize>> {
    let mut reach = vec![false; n];
    let mut work = vec![entry];
    reach[entry] = true;
    while let Some(b) = work.pop() {
        for e in &succs[b] {
            if !reach[e.to] {
                reach[e.to] = true;
                work.push(e.to);
            }
        }
    }
    let mut indeg = vec![0usize; n];
    for (b, s) in succs.iter().enumerate() {
        if !reach[b] {
            continue;
        }
        for e in s {
            indeg[e.to] += 1;
        }
    }
    let mut queue: VecDeque<usize> = (0..n).filter(|&b| reach[b] && indeg[b] == 0).collect();
    let mut order = Vec::new();
    while let Some(b) = queue.pop_front() {
        order.push(b);
        for e in &succs[b] {
            indeg[e.to] -= 1;
            if indeg[e.to] == 0 {
                queue.push_back(e.to);
            }
        }
    }
    if order.len() == reach.iter().filter(|&&r| r).count() {
        Some(order)
    } else {
        None
    }
}

/// Try to prove an immediate-counted trip count for the loop
/// `header..latch`: the latch must end `dec rN; brne header`, `rN`
/// must be loaded with `ldi rN, K` in every preheader, and nothing in
/// the loop (including callees) may write `rN` besides that `dec`.
/// Returns `(K, body_longest_path, body_has_conditionals)`.
#[allow(clippy::too_many_arguments)]
fn bound_counted_loop(
    func: &Function,
    cfg: &Cfg,
    summaries: &BTreeMap<u16, Summary>,
    call_at: &BTreeMap<u16, &Vec<u16>>,
    latch: usize,
    header: usize,
    members: &BTreeSet<usize>,
    succs: &[Vec<cfg::Edge>],
    preds: &[Vec<usize>],
    cost: &[WcetBound],
) -> Option<(u64, WcetBound, bool)> {
    // Exactly one back edge into this header, and it must be the
    // *taken* edge of the latch's conditional branch (extra = 1).
    let latches: Vec<usize> = preds[header]
        .iter()
        .copied()
        .filter(|p| members.contains(p))
        .collect();
    if latches.len() != 1 || latches[0] != latch {
        return None;
    }
    if !succs[latch]
        .iter()
        .any(|e| e.to == header && e.extra == 1)
    {
        return None;
    }
    // Latch pattern: `dec rN` immediately before a `brne` whose taken
    // edge is the back edge.
    let insns = &func.blocks[latch].insns;
    let (_, brne) = insns.last()?;
    let counter = match (brne.insn, insns.len() >= 2) {
        (Insn::Brbc { s: 1, .. }, true) => match insns[insns.len() - 2].1.insn {
            Insn::Dec { d } => d,
            _ => return None,
        },
        _ => return None,
    };
    // Initial value from every preheader.
    let mut k: Option<u64> = None;
    for &p in &preds[header] {
        if members.contains(&p) {
            continue;
        }
        let mut found = None;
        for (addr, d) in func.blocks[p].insns.iter().rev() {
            let writes = reg_writes(&d.insn);
            let called = call_at
                .get(addr)
                .map(|t| union_summary(t, cfg, summaries).clobbered[counter as usize])
                .unwrap_or(false);
            if writes.contains(&counter) || called {
                found = match d.insn {
                    Insn::Ldi { d, k } if d == counter => {
                        Some(if k == 0 { 256u64 } else { u64::from(k) })
                    }
                    _ => None,
                };
                break;
            }
        }
        match (found, k) {
            (Some(v), None) => k = Some(v),
            (Some(v), Some(prev)) if v == prev => {}
            _ => return None,
        }
    }
    let k = k?;
    // The counter must not be written inside the loop except by the
    // latch's own `dec`.
    let dec_addr = insns[insns.len() - 2].0;
    for &b in members {
        for (addr, d) in &func.blocks[b].insns {
            if *addr == dec_addr {
                continue;
            }
            if reg_writes(&d.insn).contains(&counter) {
                return None;
            }
            if let Some(targets) = call_at.get(addr) {
                if union_summary(targets, cfg, summaries).clobbered[counter as usize] {
                    return None;
                }
            }
        }
    }
    // Longest path header -> latch within the loop, back edge removed.
    let body = loop_longest_path(header, latch, members, succs, cost)?;
    let conditional = members
        .iter()
        .any(|&b| succs[b].iter().filter(|e| members.contains(&e.to)).count() > 1);
    Some((k, body, conditional))
}

/// Longest path from `header` through `latch` staying inside the loop,
/// ignoring the back edge itself. `None` if the interior still has a
/// cycle (an unbounded inner loop).
fn loop_longest_path(
    header: usize,
    latch: usize,
    members: &BTreeSet<usize>,
    succs: &[Vec<cfg::Edge>],
    cost: &[WcetBound],
) -> Option<WcetBound> {
    // Topological order of the loop interior.
    let in_loop = |b: usize| members.contains(&b);
    let mut indeg: BTreeMap<usize, usize> = members.iter().map(|&b| (b, 0)).collect();
    for &b in members {
        for e in &succs[b] {
            if in_loop(e.to) && !(b == latch && e.to == header) {
                *indeg.get_mut(&e.to).unwrap() += 1;
            }
        }
    }
    let mut queue: VecDeque<usize> = indeg
        .iter()
        .filter(|&(_, &d)| d == 0)
        .map(|(&b, _)| b)
        .collect();
    let mut order = Vec::new();
    while let Some(b) = queue.pop_front() {
        order.push(b);
        for e in &succs[b] {
            if in_loop(e.to) && !(b == latch && e.to == header) {
                let d = indeg.get_mut(&e.to).unwrap();
                *d -= 1;
                if *d == 0 {
                    queue.push_back(e.to);
                }
            }
        }
    }
    if order.len() != members.len() {
        return None;
    }
    let mut dist: BTreeMap<usize, Option<WcetBound>> =
        members.iter().map(|&b| (b, None)).collect();
    dist.insert(header, Some(WcetBound::Exact(0)));
    for &b in &order {
        let Some(d) = dist[&b] else { continue };
        let here = d.add(cost[b]);
        for e in &succs[b] {
            if in_loop(e.to) && !(b == latch && e.to == header) {
                let via = here.add_cycles(u64::from(e.extra));
                let entry = dist.get_mut(&e.to).unwrap();
                *entry = Some(match *entry {
                    None => via,
                    Some(prev) => prev.join_max(via),
                });
            }
        }
    }
    dist[&latch].map(|d| d.add(cost[latch]))
}

// ---------------------------------------------------------------------
// Orchestration
// ---------------------------------------------------------------------

/// Strongly connected components of the call graph with more than one
/// member (or a self loop): recursion.
fn recursive_sets(cfg: &Cfg) -> Vec<BTreeSet<usize>> {
    // Tarjan, iterative.
    let n = cfg.functions.len();
    let adj: Vec<Vec<usize>> = (0..n).map(|f| cfg.callees(f)).collect();
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut out = Vec::new();
    let visit = |v: usize,
                     index: &mut Vec<usize>,
                     low: &mut Vec<usize>,
                     stack: &mut Vec<usize>,
                     on_stack: &mut Vec<bool>,
                     next_index: &mut usize| {
        index[v] = *next_index;
        low[v] = *next_index;
        *next_index += 1;
        stack.push(v);
        on_stack[v] = true;
    };
    for root in 0..n {
        if index[root] != usize::MAX {
            continue;
        }
        visit(
            root,
            &mut index,
            &mut low,
            &mut stack,
            &mut on_stack,
            &mut next_index,
        );
        let mut call: Vec<(usize, usize)> = vec![(root, 0)];
        while let Some(&mut (v, ref mut i)) = call.last_mut() {
            if *i < adj[v].len() {
                let w = adj[v][*i];
                *i += 1;
                if index[w] == usize::MAX {
                    visit(
                        w,
                        &mut index,
                        &mut low,
                        &mut stack,
                        &mut on_stack,
                        &mut next_index,
                    );
                    call.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                if low[v] == index[v] {
                    let mut scc = BTreeSet::new();
                    loop {
                        let w = stack.pop().unwrap();
                        on_stack[w] = false;
                        scc.insert(w);
                        if w == v {
                            break;
                        }
                    }
                    let self_loop = scc.len() == 1 && adj[v].contains(&v);
                    if scc.len() > 1 || self_loop {
                        out.push(scc);
                    }
                }
                call.pop();
                if let Some(&mut (parent, _)) = call.last_mut() {
                    low[parent] = low[parent].min(low[v]);
                }
            }
        }
    }
    out
}

/// Callee-first order over the non-recursive part of the call graph.
fn bottom_up_order(cfg: &Cfg, recursive: &BTreeSet<usize>) -> Vec<usize> {
    let n = cfg.functions.len();
    let mut state = vec![0u8; n]; // 0 = unvisited, 1 = visiting, 2 = done
    let mut order = Vec::new();
    for root in 0..n {
        if state[root] != 0 || recursive.contains(&root) {
            continue;
        }
        let mut stack: Vec<(usize, usize)> = vec![(root, 0)];
        state[root] = 1;
        while let Some(&mut (v, ref mut i)) = stack.last_mut() {
            let callees = cfg.callees(v);
            if *i < callees.len() {
                let w = callees[*i];
                *i += 1;
                if state[w] == 0 && !recursive.contains(&w) {
                    state[w] = 1;
                    stack.push((w, 0));
                }
            } else {
                state[v] = 2;
                order.push(v);
                stack.pop();
            }
        }
    }
    order
}

/// The whole pipeline: predecode, recover, analyze, report.
pub(super) fn run(words: &[u16], config: &FirmwareConfig) -> FirmwareReport {
    let table = Predecoded::from_words(words);
    let image_words = words.len();
    let n_vectors = config.vectors.len();
    let mut diags: Vec<FwDiagnostic> = Vec::new();

    // Vector slots: installed dispatches become analysis entries.
    struct Slot {
        vector: u8,
        slot_addr: u16,
        installed: bool,
        target: u16, // handler address (jmp/rjmp destination, or the slot)
    }
    let mut slots: Vec<Slot> = Vec::new();
    for v in 0..n_vectors {
        let slot_addr = (v * 2) as u16;
        let d = table.get(slot_addr);
        let next = slot_addr + u16::from(d.words);
        let (installed, target) = match d.insn {
            Insn::Jmp { addr } => (true, addr),
            Insn::Rjmp { k } => (true, next.wrapping_add(k as u16)),
            Insn::Reti => (true, slot_addr),
            _ => (false, slot_addr),
        };
        if !installed {
            diags.push(FwDiagnostic {
                class: FwDiagClass::UnreachableVector,
                addr: Some(u32::from(slot_addr) * 2),
                loc: None,
                insn: Some(d.insn.to_string()),
                message: format!(
                    "vector {v} ({}) slot holds no dispatch",
                    config.vectors[v]
                ),
                note: Some(
                    "an interrupt through this vector falls through the table \
                     into the next slot"
                        .to_string(),
                ),
            });
        }
        slots.push(Slot {
            vector: v as u8,
            slot_addr,
            installed,
            target,
        });
    }

    // CFG recovery from installed slots plus declared icall targets.
    let mut entries: Vec<u16> = slots
        .iter()
        .filter(|s| s.installed)
        .map(|s| s.slot_addr)
        .collect();
    let indirect: Vec<u16> = config.indirect_targets.iter().map(|(a, _)| *a).collect();
    entries.extend(indirect.iter().copied());
    let graph = cfg::recover(&table, image_words, &entries, &indirect, config.fetch_penalty);

    // Naming and location rendering.
    let fn_name = |entry: u16| -> String {
        config
            .symbol_at(entry)
            .map(str::to_string)
            .unwrap_or_else(|| format!("0x{:04X}", u32::from(entry) * 2))
    };
    let loc_for = |addr: u16| -> Option<String> {
        // Nearest preceding configured code symbol; fall back to the
        // entry of the containing function.
        let anchor = config
            .symbols
            .iter()
            .filter(|(a, _)| *a <= addr)
            .max_by_key(|(a, n)| (*a, std::cmp::Reverse(n.clone())))
            .map(|(a, n)| (*a, n.clone()))
            .or_else(|| {
                graph
                    .functions
                    .iter()
                    .filter(|f| {
                        f.entry <= addr
                            && f.blocks.iter().any(|b| b.start <= addr && addr < b.end())
                    })
                    .map(|f| f.entry)
                    .max()
                    .map(|entry| (entry, fn_name(entry)))
            })?;
        Some(if anchor.0 == addr {
            anchor.1
        } else {
            format!("{}+0x{:04X}", anchor.1, u32::from(addr - anchor.0) * 2)
        })
    };

    // Structural diagnostics from recovery.
    for raw in &graph.diags {
        push_raw(&mut diags, raw, &loc_for);
    }

    // Vector-overlap: reachable blocks inside the table region that are
    // not themselves installed slots.
    let table_bytes = (0, n_vectors as u32 * 4);
    let slot_starts: BTreeSet<u16> = slots
        .iter()
        .filter(|s| s.installed)
        .map(|s| s.slot_addr)
        .collect();
    let mut overlapped: BTreeSet<u16> = BTreeSet::new();
    for func in &graph.functions {
        for block in &func.blocks {
            let bytes = (u32::from(block.start) * 2, u32::from(block.end()) * 2);
            if ulp_core::map::ranges_overlap(bytes, table_bytes)
                && !slot_starts.contains(&block.start)
                && overlapped.insert(block.start)
            {
                diags.push(FwDiagnostic {
                    class: FwDiagClass::VectorOverlap,
                    addr: Some(bytes.0),
                    loc: loc_for(block.start),
                    insn: block.insns.first().map(|(_, d)| d.insn.to_string()),
                    message: format!(
                        "reachable code at 0x{:04X}..0x{:04X} overlaps the vector table \
                         (0x0000..0x{:04X})",
                        bytes.0, bytes.1, table_bytes.1
                    ),
                    note: Some("an interrupt through an overlapped slot executes it".to_string()),
                })
            }
        }
    }

    // Recursion.
    let sccs = recursive_sets(&graph);
    let mut recursive: BTreeSet<usize> = BTreeSet::new();
    for scc in &sccs {
        recursive.extend(scc.iter().copied());
        let mut names: Vec<String> = scc
            .iter()
            .map(|&f| fn_name(graph.functions[f].entry))
            .collect();
        names.sort();
        let first = *scc.iter().next().unwrap();
        let entry = graph.functions[first].entry;
        diags.push(FwDiagnostic {
            class: FwDiagClass::Recursion,
            addr: Some(u32::from(entry) * 2),
            loc: loc_for(entry),
            insn: None,
            message: format!("recursive call cycle: {}", names.join(" -> ")),
            note: Some("no static stack or WCET bound exists for recursion".to_string()),
        });
    }

    // Bottom-up summaries.
    let mut summaries: BTreeMap<u16, Summary> = BTreeMap::new();
    for &f in recursive.iter() {
        summaries.insert(graph.functions[f].entry, Summary::conservative());
    }
    let mut imbalance_addrs: BTreeSet<u16> = BTreeSet::new();
    for f in bottom_up_order(&graph, &recursive) {
        let func = &graph.functions[f];
        let mut result = flow_function(func, &graph, &summaries);
        let (wcet, headers) = wcet_function(func, &graph, &summaries, config.fetch_penalty);
        result.summary.wcet = wcet;
        result.summary.unbounded_loops = headers;
        imbalance_addrs.extend(result.imbalances.iter().copied());
        summaries.insert(func.entry, result.summary);
    }
    for addr in &imbalance_addrs {
        diags.push(FwDiagnostic {
            class: FwDiagClass::StackImbalance,
            addr: Some(u32::from(*addr) * 2),
            loc: loc_for(*addr),
            insn: None,
            message: "stack height disagrees across paths reaching this point".to_string(),
            note: Some(
                "pushes and pops must balance on every path; a mismatched join \
                 makes the depth (and any return address) undefined"
                    .to_string(),
            ),
        });
    }

    // Call-graph closure per entry function (for ISR-context lints).
    let closure = |start: usize| -> BTreeSet<usize> {
        let mut seen = BTreeSet::from([start]);
        let mut work = vec![start];
        while let Some(f) = work.pop() {
            for c in graph.callees(f) {
                if seen.insert(c) {
                    work.push(c);
                }
            }
        }
        seen
    };

    // Per-vector reports and ISR lints.
    let mut entry_reports: Vec<EntryReport> = Vec::new();
    let mut isr_reachable: BTreeSet<usize> = BTreeSet::new();
    for slot in &slots {
        let name = config.vectors[slot.vector as usize].clone();
        if !slot.installed {
            entry_reports.push(EntryReport {
                vector: slot.vector,
                name,
                target: "(not installed)".to_string(),
                dispatch: VectorDispatch::NotInstalled,
                wcet: None,
                stack: None,
            });
            continue;
        }
        // A slot outside the image has no function (recovery already
        // diagnosed the bad entry point).
        let (Some(&fidx), Some(summary)) = (
            graph.func_at.get(&slot.slot_addr),
            summaries.get(&slot.slot_addr),
        ) else {
            entry_reports.push(EntryReport {
                vector: slot.vector,
                name,
                target: "(outside image)".to_string(),
                dispatch: VectorDispatch::Installed,
                wcet: None,
                stack: None,
            });
            continue;
        };
        let target = if slot.target == slot.slot_addr {
            "reti".to_string()
        } else {
            fn_name(slot.target)
        };
        let is_reset = slot.vector == 0;
        let wcet = if is_reset {
            None
        } else {
            Some(WcetBound::Exact(4).add(summary.wcet))
        };
        let stack = summary.stack_known.then_some(summary.max_stack);
        if !is_reset {
            isr_reachable.extend(closure(fidx).iter().copied());
            // Clobber lints.
            let clobbered: Vec<String> = summary
                .clobbered
                .iter()
                .enumerate()
                .filter(|(_, c)| **c)
                .map(|(n, _)| format!("r{n}"))
                .collect();
            if !clobbered.is_empty() {
                diags.push(FwDiagnostic {
                    class: FwDiagClass::IsrClobbersRegister,
                    addr: Some(u32::from(slot.slot_addr) * 2),
                    loc: loc_for(slot.slot_addr),
                    insn: None,
                    message: format!(
                        "vector {} ({name}) handler `{target}` returns with {} clobbered",
                        slot.vector,
                        clobbered.join(", ")
                    ),
                    note: Some(
                        "an ISR must save and restore every register it touches; the \
                         interrupted code relies on all of them"
                            .to_string(),
                    ),
                });
            }
            if summary.sreg_clobbered {
                diags.push(FwDiagnostic {
                    class: FwDiagClass::IsrClobbersSreg,
                    addr: Some(u32::from(slot.slot_addr) * 2),
                    loc: loc_for(slot.slot_addr),
                    insn: None,
                    message: format!(
                        "vector {} ({name}) handler `{target}` returns with SREG clobbered",
                        slot.vector
                    ),
                    note: Some(
                        "save SREG through a register (`in rX, 0x3F` ... `out 0x3F, rX`) \
                         around any flag-modifying instruction"
                            .to_string(),
                    ),
                });
            }
            // WCET budget.
            if let (Some(budget), Some(bound)) = (config.isr_budget, wcet) {
                if let Some(c) = bound.cycles() {
                    if c > budget {
                        diags.push(FwDiagnostic {
                            class: FwDiagClass::WcetOverrun,
                            addr: Some(u32::from(slot.slot_addr) * 2),
                            loc: loc_for(slot.slot_addr),
                            insn: None,
                            message: format!(
                                "vector {} ({name}) worst case {c} cycles exceeds the \
                                 {budget}-cycle budget",
                                slot.vector
                            ),
                            note: None,
                        });
                    }
                }
            }
        }
        entry_reports.push(EntryReport {
            vector: slot.vector,
            name,
            target,
            dispatch: VectorDispatch::Installed,
            wcet,
            stack,
        });
    }

    // Lints over ISR-reachable code: sei re-enabling nesting and loops
    // the bounder gave up on (the reset path is exempt from both — the
    // main loop is unbounded by design).
    let mut seen_sei: BTreeSet<u16> = BTreeSet::new();
    let mut seen_loop: BTreeSet<u16> = BTreeSet::new();
    for &f in &isr_reachable {
        let func = &graph.functions[f];
        let summary = &summaries[&func.entry];
        for &addr in &summary.sei_sites {
            if seen_sei.insert(addr) {
                diags.push(FwDiagnostic {
                    class: FwDiagClass::IsrReenablesIrq,
                    addr: Some(u32::from(addr) * 2),
                    loc: loc_for(addr),
                    insn: Some("sei".to_string()),
                    message: "`sei` in interrupt context re-enables nesting".to_string(),
                    note: Some(
                        "the whole-firmware stack bound assumes one interrupt frame; \
                         nested interrupts void it"
                            .to_string(),
                    ),
                });
            }
        }
        for &addr in &summary.unbounded_loops {
            if seen_loop.insert(addr) {
                diags.push(FwDiagnostic {
                    class: FwDiagClass::UnboundedLoop,
                    addr: Some(u32::from(addr) * 2),
                    loc: loc_for(addr),
                    insn: None,
                    message: "loop reachable from an interrupt has no provable bound".to_string(),
                    note: Some(
                        "only immediate-counted loops (`ldi rN, K` ... `dec rN; brne`) \
                         are bounded; this one's trip count is data-dependent"
                            .to_string(),
                    ),
                });
            }
        }
    }

    // Sleep-while-interrupts-disabled: concrete I-flag propagation
    // from every hardware entry (reset and interrupt dispatch both
    // start with I clear).
    let mut seen_sleep: BTreeSet<u16> = BTreeSet::new();
    let mut visited_eval: BTreeSet<(u16, u8)> = BTreeSet::new();
    let i_key = |i: IVal| match i {
        IVal::Set => 0u8,
        IVal::Clear => 1,
        _ => 2,
    };
    let mut eval_stack: Vec<(u16, IVal)> = slots
        .iter()
        .filter(|s| s.installed)
        .map(|s| (s.slot_addr, IVal::Clear))
        .collect();
    while let Some((entry, in_i)) = eval_stack.pop() {
        if !visited_eval.insert((entry, i_key(in_i))) {
            continue;
        }
        let Some(summary) = summaries.get(&entry) else {
            continue;
        };
        for &(addr, sym) in &summary.sleep_sites {
            if sym.resolve(in_i) == IVal::Clear && seen_sleep.insert(addr) {
                diags.push(FwDiagnostic {
                    class: FwDiagClass::SleepWhileIrqOff,
                    addr: Some(u32::from(addr) * 2),
                    loc: loc_for(addr),
                    insn: Some("sleep".to_string()),
                    message: "`sleep` with interrupts provably disabled".to_string(),
                    note: Some(
                        "this core only samples interrupts while I is set: nothing can \
                         ever wake the CPU from this sleep"
                            .to_string(),
                    ),
                });
            }
        }
        for (_, targets, sym) in &summary.call_sites {
            let callee_i = sym.resolve(in_i);
            for t in targets {
                eval_stack.push((*t, callee_i));
            }
        }
    }

    // Whole-firmware stack bound.
    let main_depth = slots
        .iter()
        .find(|s| s.vector == 0 && s.installed)
        .and_then(|s| summaries.get(&s.slot_addr))
        .map(|s| s.stack_known.then_some(s.max_stack))
        .unwrap_or(Some(0));
    let isr_depth = slots
        .iter()
        .filter(|s| s.vector != 0 && s.installed)
        .filter_map(|s| summaries.get(&s.slot_addr))
        .map(|summary| summary.stack_known.then_some(2 + summary.max_stack))
        .try_fold(0u32, |acc, d| d.map(|d| acc.max(d)));
    let stack_bound = match (main_depth, isr_depth) {
        (Some(m), Some(i)) => Some(m + i),
        _ => None,
    };
    let capacity = config.stack_capacity();
    if let Some(bound) = stack_bound {
        if bound > capacity {
            diags.push(FwDiagnostic {
                class: FwDiagClass::StackOverflow,
                addr: None,
                loc: None,
                insn: None,
                message: format!(
                    "worst-case stack {bound} bytes exceeds the {capacity}-byte region \
                     0x{:04X}..=0x{:04X}",
                    config.stack_low, config.stack_top
                ),
                note: Some(
                    "bound = deepest main-context path + one interrupt frame + the \
                     deepest ISR"
                        .to_string(),
                ),
            });
        }
    }

    // Deterministic ordering, structural duplicates removed (two
    // functions can share a diagnosed block).
    diags.sort_by(|a, b| {
        (a.addr.unwrap_or(u32::MAX), a.class.code(), &a.message).cmp(&(
            b.addr.unwrap_or(u32::MAX),
            b.class.code(),
            &b.message,
        ))
    });
    diags.dedup_by(|a, b| a.class == b.class && a.addr == b.addr && a.message == b.message);

    FirmwareReport {
        name: config.name.clone(),
        functions: graph.functions.len(),
        blocks: graph.functions.iter().map(|f| f.blocks.len()).sum(),
        insns: graph
            .functions
            .iter()
            .flat_map(|f| f.blocks.iter())
            .map(|b| b.insns.len())
            .sum(),
        image_words,
        entries: entry_reports,
        stack_bound,
        stack_capacity: capacity,
        diags,
    }
}

fn push_raw(
    diags: &mut Vec<FwDiagnostic>,
    raw: &RawDiag,
    loc_for: &dyn Fn(u16) -> Option<String>,
) {
    diags.push(FwDiagnostic {
        class: raw.class,
        addr: Some(u32::from(raw.addr) * 2),
        loc: loc_for(raw.addr),
        insn: raw.insn.clone(),
        message: raw.message.clone(),
        note: raw.note.clone(),
    });
}
