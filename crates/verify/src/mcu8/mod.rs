//! Whole-firmware static analysis for mcu8 (AVR-subset) images.
//!
//! Where the EP checker ([`check_isr`](crate::check_isr)) exploits
//! straight-line ISR structure, general-purpose mcu8 firmware has
//! loops, calls, and a vector table — so this module first recovers a
//! control-flow graph from the shared [`Predecoded`] instruction table
//! (the same table the simulator steps from), then runs three analyses
//! over it:
//!
//! * **Stack-depth verification** — an abstract interpretation tracks
//!   the exact push/pop balance of every function (join points must
//!   agree), call frames add `2 + callee_depth` transiently, and the
//!   whole-firmware bound `main + interrupt frame + deepest ISR` is
//!   checked against the configured stack region. Recursion is
//!   rejected (the bound would not exist).
//! * **Interrupt-safety lints** — the same abstract domain tracks which
//!   registers still hold their entry values (including values saved on
//!   the stack and restored, and `SREG` round-tripped through
//!   `in`/`out 0x3F`), so ISRs that clobber non-saved registers or
//!   flags are flagged; plus vector-table conformance (uninstalled
//!   slots, code overlapping the table — sharing
//!   [`ulp_core::map::ranges_overlap`] with the EP checker) and
//!   `sleep` executed while interrupts are provably disabled (the CPU
//!   would never wake).
//! * **Loop-bounded WCET** — cycle bounds per interrupt vector, exact
//!   on straight-line paths, with immediate-counted loops
//!   (`ldi rN, K` … `dec rN; brne`) collapsed to `K` iterations and an
//!   explicit `unbounded` diagnostic for anything the bounder cannot
//!   prove. The reset vector is exempt (an event-driven main loop
//!   never terminates by design).
//!
//! Soundness caveats are documented in DESIGN.md: stores are assumed
//! not to overwrite the stack or program, and ISR nesting is assumed
//! absent (which the `isr-reenables-interrupts` lint itself guards).
//!
//! [`Predecoded`]: ulp_mcu8::Predecoded

mod analyze;
mod cfg;

use std::fmt;
use ulp_sim::diag as render;

use crate::diag::Severity;

/// The closed set of diagnostic classes the firmware analyzer emits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FwDiagClass {
    /// `ijmp`, or `icall` without declared targets: the CFG cannot be
    /// recovered past this instruction.
    UnresolvedIndirect,
    /// A cycle in the call graph: no stack or WCET bound exists.
    Recursion,
    /// The worst-case stack bound exceeds the configured stack region.
    StackOverflow,
    /// Push/pop imbalance: a join point is reached with two different
    /// stack heights, or a `ret`/`reti` executes with bytes still
    /// pushed.
    StackImbalance,
    /// An ISR returns with a register no longer holding its
    /// interrupted-context value.
    IsrClobbersRegister,
    /// An ISR returns with `SREG` flags clobbered (no save/restore).
    IsrClobbersSreg,
    /// A vector slot inside the configured table holds no dispatch
    /// (`jmp`/`rjmp`/`reti`): an interrupt here falls through into the
    /// next slot.
    UnreachableVector,
    /// Reachable code overlaps the vector table region.
    VectorOverlap,
    /// `sleep` executed while the I flag is provably clear: no
    /// interrupt can ever wake the CPU again.
    SleepWhileIrqOff,
    /// `sei` executed in interrupt context: re-enables nesting, which
    /// invalidates the single-interrupt-frame stack bound.
    IsrReenablesIrq,
    /// A loop reachable from an interrupt vector whose trip count the
    /// bounder cannot prove (non-immediate counter, clobbered counter,
    /// or multiple back edges).
    UnboundedLoop,
    /// An interrupt vector's WCET bound exceeds the configured budget.
    WcetOverrun,
    /// A reachable instruction decodes as invalid (halts the CPU).
    InvalidOpcode,
    /// Execution can run past the end of the loaded image into
    /// zero-filled memory.
    RunsOffImage,
}

impl FwDiagClass {
    /// Stable kebab-case code used in rendered diagnostics.
    pub fn code(self) -> &'static str {
        match self {
            FwDiagClass::UnresolvedIndirect => "unresolved-indirect",
            FwDiagClass::Recursion => "recursion",
            FwDiagClass::StackOverflow => "stack-overflow",
            FwDiagClass::StackImbalance => "stack-imbalance",
            FwDiagClass::IsrClobbersRegister => "isr-clobbers-register",
            FwDiagClass::IsrClobbersSreg => "isr-clobbers-sreg",
            FwDiagClass::UnreachableVector => "unreachable-vector",
            FwDiagClass::VectorOverlap => "vector-overlap",
            FwDiagClass::SleepWhileIrqOff => "sleep-while-irq-off",
            FwDiagClass::IsrReenablesIrq => "isr-reenables-irq",
            FwDiagClass::UnboundedLoop => "unbounded-loop",
            FwDiagClass::WcetOverrun => "wcet-overrun",
            FwDiagClass::InvalidOpcode => "invalid-opcode",
            FwDiagClass::RunsOffImage => "runs-off-image",
        }
    }

    /// Severity of this class.
    pub fn severity(self) -> Severity {
        match self {
            FwDiagClass::UnreachableVector
            | FwDiagClass::IsrReenablesIrq
            | FwDiagClass::UnboundedLoop => Severity::Warning,
            _ => Severity::Error,
        }
    }
}

/// One firmware finding, tied to a byte address when it concerns a
/// specific instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FwDiagnostic {
    /// The finding's class.
    pub class: FwDiagClass,
    /// Byte address of the offending instruction (`None` for
    /// whole-firmware findings such as the stack bound).
    pub addr: Option<u32>,
    /// Rendered location (`symbol+0xOFF` when a symbol covers it).
    pub loc: Option<String>,
    /// Assembler rendering of the offending instruction, if any.
    pub insn: Option<String>,
    /// Human-readable description.
    pub message: String,
    /// Optional follow-up note.
    pub note: Option<String>,
}

impl FwDiagnostic {
    /// Render as rustc-style lines.
    pub fn render(&self, firmware: &str) -> String {
        let mut out = render::header(
            &self.class.severity().to_string(),
            self.class.code(),
            &self.message,
        );
        out.push('\n');
        let loc = match (&self.loc, self.addr) {
            (Some(loc), _) => format!("{firmware}:{loc}"),
            (None, Some(addr)) => format!("{firmware}:0x{addr:04X}"),
            (None, None) => firmware.to_string(),
        };
        out.push_str(&render::pointer(&loc, self.insn.as_deref().unwrap_or("")));
        if let Some(note) = &self.note {
            out.push('\n');
            out.push_str(&render::note(note));
        }
        out
    }
}

/// Worst-case cycle bound of one interrupt entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WcetBound {
    /// Every execution takes exactly this many cycles (straight-line
    /// code, or counted loops with straight-line bodies).
    Exact(u64),
    /// No execution takes more than this many cycles.
    UpperBound(u64),
    /// The bounder cannot prove termination.
    Unbounded,
}

impl WcetBound {
    /// The numeric bound, if one exists.
    pub fn cycles(self) -> Option<u64> {
        match self {
            WcetBound::Exact(c) | WcetBound::UpperBound(c) => Some(c),
            WcetBound::Unbounded => None,
        }
    }

    pub(crate) fn add(self, other: WcetBound) -> WcetBound {
        match (self, other) {
            (WcetBound::Unbounded, _) | (_, WcetBound::Unbounded) => WcetBound::Unbounded,
            (WcetBound::Exact(a), WcetBound::Exact(b)) => WcetBound::Exact(a + b),
            (a, b) => WcetBound::UpperBound(
                a.cycles().unwrap_or(0) + b.cycles().unwrap_or(0),
            ),
        }
    }

    pub(crate) fn add_cycles(self, c: u64) -> WcetBound {
        self.add(WcetBound::Exact(c))
    }

    /// Join of alternative paths: the worst of the two, exact only if
    /// both alternatives cost the same.
    pub(crate) fn join_max(self, other: WcetBound) -> WcetBound {
        match (self, other) {
            (WcetBound::Unbounded, _) | (_, WcetBound::Unbounded) => WcetBound::Unbounded,
            (WcetBound::Exact(a), WcetBound::Exact(b)) if a == b => WcetBound::Exact(a),
            (a, b) => WcetBound::UpperBound(a.cycles().unwrap().max(b.cycles().unwrap())),
        }
    }
}

impl fmt::Display for WcetBound {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WcetBound::Exact(c) => write!(f, "{c} cycles (exact)"),
            WcetBound::UpperBound(c) => write!(f, "<={c} cycles"),
            WcetBound::Unbounded => f.write_str("unbounded"),
        }
    }
}

/// How a vector slot dispatches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VectorDispatch {
    /// The slot holds a `jmp`/`rjmp` (or a bare `reti`) and the target
    /// was analyzed.
    Installed,
    /// The slot holds no dispatch instruction.
    NotInstalled,
}

/// Per-interrupt-vector analysis results.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EntryReport {
    /// Vector number (0 = reset).
    pub vector: u8,
    /// The vector's configured name.
    pub name: String,
    /// Name of the handler the slot dispatches to.
    pub target: String,
    /// Whether the slot holds a dispatch at all.
    pub dispatch: VectorDispatch,
    /// WCET from hardware dispatch (4 cycles) through `reti`. `None`
    /// for the reset vector (main never returns by design) and for
    /// uninstalled slots.
    pub wcet: Option<WcetBound>,
    /// Worst-case stack bytes this entry pushes beyond the interrupt
    /// frame (`None` if recursion or an unresolved indirect call makes
    /// the bound unknowable).
    pub stack: Option<u32>,
}

/// What to analyze and against which contracts. Presets for the boards
/// in the workspace live beside the firmware they describe (the bench
/// crate's `mcu8check` module builds the Mica2 one).
#[derive(Debug, Clone)]
pub struct FirmwareConfig {
    /// Name used in rendered reports.
    pub name: String,
    /// Interrupt vector names; index = vector number, index 0 = reset.
    /// Slots are two words apart (ATmega style), so the table occupies
    /// words `0 .. 2 * vectors.len()`.
    pub vectors: Vec<String>,
    /// Initial stack pointer (byte address, grows down).
    pub stack_top: u16,
    /// Lowest byte address the stack may touch.
    pub stack_low: u16,
    /// Optional per-ISR cycle budget (dispatch to `reti`).
    pub isr_budget: Option<u64>,
    /// Extra cycles per fetched word (0 = Harvard flash).
    pub fetch_penalty: u8,
    /// Declared `icall` targets (word addresses + names). An `icall`
    /// is analyzed as a call to *any* of these; firmware with no
    /// declared targets gets `unresolved-indirect` on every `icall`.
    pub indirect_targets: Vec<(u16, String)>,
    /// Code symbols (word address → label) used for locations in
    /// rendered diagnostics.
    pub symbols: Vec<(u16, String)>,
}

impl FirmwareConfig {
    /// A minimal config: `n_vectors` unnamed vectors, stack in
    /// `[stack_low, stack_top]`, no budget, Harvard fetch.
    pub fn bare(name: &str, n_vectors: u8, stack_top: u16, stack_low: u16) -> FirmwareConfig {
        FirmwareConfig {
            name: name.to_string(),
            vectors: (0..n_vectors)
                .map(|v| if v == 0 { "reset".into() } else { format!("irq{v}") })
                .collect(),
            stack_top,
            stack_low,
            isr_budget: None,
            fetch_penalty: 0,
            indirect_targets: Vec::new(),
            symbols: Vec::new(),
        }
    }

    /// The name of the code symbol at exactly `word_addr`, if any
    /// (lexicographically smallest on aliasing).
    fn symbol_at(&self, word_addr: u16) -> Option<&str> {
        self.symbols
            .iter()
            .filter(|(a, _)| *a == word_addr)
            .map(|(_, n)| n.as_str())
            .min()
    }

    /// Stack capacity in bytes.
    fn stack_capacity(&self) -> u32 {
        u32::from(self.stack_top).saturating_sub(u32::from(self.stack_low)) + 1
    }
}

/// The result of analyzing one firmware image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FirmwareReport {
    /// Name the firmware was checked under.
    pub name: String,
    /// Discovered functions (call-graph nodes).
    pub functions: usize,
    /// Recovered basic blocks.
    pub blocks: usize,
    /// Reachable instructions.
    pub insns: usize,
    /// Image length in program words.
    pub image_words: usize,
    /// Per-vector results, in vector order.
    pub entries: Vec<EntryReport>,
    /// Whole-firmware worst-case stack bytes (main + one interrupt
    /// frame + deepest ISR), when computable.
    pub stack_bound: Option<u32>,
    /// Bytes available in the configured stack region.
    pub stack_capacity: u32,
    /// Findings, ordered by address then class.
    pub diags: Vec<FwDiagnostic>,
}

impl FirmwareReport {
    /// Number of error-severity findings.
    pub fn errors(&self) -> usize {
        self.diags
            .iter()
            .filter(|d| d.class.severity() == Severity::Error)
            .count()
    }

    /// Number of warning-severity findings.
    pub fn warnings(&self) -> usize {
        self.diags.len() - self.errors()
    }

    /// Whether the report is free of errors *and* warnings.
    pub fn is_clean(&self) -> bool {
        self.diags.is_empty()
    }

    /// Render the full report deterministically.
    pub fn render(&self) -> String {
        let mut out = format!(
            "mcu8check `{}`: {} function{}, {} block{}, {} insn{}, {} image word{}\n",
            self.name,
            self.functions,
            if self.functions == 1 { "" } else { "s" },
            self.blocks,
            if self.blocks == 1 { "" } else { "s" },
            self.insns,
            if self.insns == 1 { "" } else { "s" },
            self.image_words,
            if self.image_words == 1 { "" } else { "s" },
        );
        for e in &self.entries {
            out.push_str(&format!("  vector {} {} -> {}: ", e.vector, e.name, e.target));
            match e.stack {
                Some(s) => out.push_str(&format!("stack {s} bytes, ")),
                None => out.push_str("stack n/a, "),
            }
            match (&e.wcet, e.dispatch) {
                (_, VectorDispatch::NotInstalled) => out.push_str("wcet n/a"),
                (None, _) => out.push_str("wcet n/a"),
                (Some(WcetBound::Exact(c)), _) => out.push_str(&format!("wcet {c} cycles (exact)")),
                (Some(WcetBound::UpperBound(c)), _) => out.push_str(&format!("wcet <={c} cycles")),
                (Some(WcetBound::Unbounded), _) => out.push_str("wcet unbounded"),
            }
            out.push('\n');
        }
        match self.stack_bound {
            Some(b) => out.push_str(&format!(
                "  stack worst case {b} of {} bytes\n",
                self.stack_capacity
            )),
            None => out.push_str(&format!(
                "  stack worst case n/a of {} bytes\n",
                self.stack_capacity
            )),
        }
        for diag in &self.diags {
            out.push_str(&diag.render(&self.name));
            out.push('\n');
        }
        out.push_str(&render::summary(self.errors(), self.warnings()));
        out.push('\n');
        out
    }
}

/// Statically analyze a whole mcu8 firmware image.
///
/// `words` is the program image as 16-bit words starting at word
/// address 0 (the vector table). The image is predecoded once into the
/// same [`Predecoded`](ulp_mcu8::Predecoded) table the simulator steps
/// from, the CFG is recovered from the configured entry points, and
/// the stack, interrupt-safety, and WCET analyses run over it.
pub fn check_firmware(words: &[u16], cfg: &FirmwareConfig) -> FirmwareReport {
    analyze::run(words, cfg)
}

#[cfg(test)]
mod tests;
