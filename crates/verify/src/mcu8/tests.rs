//! Unit tests: one clean firmware plus at least one program per
//! diagnostic class. Broken-firmware *fixtures* (rendered end to end)
//! live in the bench crate's `mcu8check` module; these tests pin the
//! analysis results structurally.

use super::*;
use ulp_mcu8::{assemble, decode, Insn};

/// Assemble AVR source into a word image starting at word address 0.
fn asm(src: &str) -> Vec<u16> {
    let img = assemble(src).unwrap();
    let end = img.segments().iter().map(|s| s.end()).max().unwrap_or(0);
    let bytes = img.flatten(end.next_multiple_of(2) as usize, 0).unwrap();
    bytes
        .chunks(2)
        .map(|c| u16::from_le_bytes([c[0], c[1]]))
        .collect()
}

/// Word address of a label.
fn sym(src: &str, name: &str) -> u16 {
    (assemble(src).unwrap().symbol(name).unwrap() / 2) as u16
}

fn classes(report: &FirmwareReport) -> Vec<FwDiagClass> {
    report.diags.iter().map(|d| d.class).collect()
}

const SAVE_ALL_ISR: &str = "
    jmp main
    jmp tick
main:
    rjmp main
tick:
    push r16
    in r16, 0x3F
    push r16
    ldi r16, 42
    pop r16
    out 0x3F, r16
    pop r16
    reti
";

#[test]
fn clean_firmware_has_exact_wcet_and_stack_bound() {
    let cfg = FirmwareConfig::bare("clean", 2, 0x10FF, 0x1000);
    let report = check_firmware(&asm(SAVE_ALL_ISR), &cfg);
    assert!(report.is_clean(), "unexpected diags: {:?}", report.diags);
    assert_eq!(report.functions, 2);
    // 4 dispatch + 3 jmp + (2+1+2+1+2+1+2) body + 4 reti.
    assert_eq!(report.entries[1].wcet, Some(WcetBound::Exact(22)));
    assert_eq!(report.entries[1].stack, Some(2));
    // Main pushes nothing; one interrupt frame plus the ISR's saves.
    assert_eq!(report.stack_bound, Some(4));
    assert_eq!(report.stack_capacity, 0x100);
    // Reset never returns: wcet is n/a by design.
    assert_eq!(report.entries[0].wcet, None);
}

#[test]
fn report_renders_vector_lines() {
    let cfg = FirmwareConfig::bare("clean", 2, 0x10FF, 0x1000);
    let report = check_firmware(&asm(SAVE_ALL_ISR), &cfg);
    let rendered = report.render();
    assert!(rendered.contains("vector 1 irq1 ->"));
    assert!(rendered.contains("wcet 22 cycles (exact)"));
    assert!(rendered.contains("stack worst case 4 of 256 bytes"));
    assert!(rendered.ends_with("no diagnostics\n"));
}

#[test]
fn uninstalled_vector_slot_warns() {
    let src = "
        jmp main
        nop
        nop
    main:
        rjmp main
    ";
    let cfg = FirmwareConfig::bare("fw", 2, 0x10FF, 0x1000);
    let report = check_firmware(&asm(src), &cfg);
    assert_eq!(classes(&report), vec![FwDiagClass::UnreachableVector]);
    assert_eq!(report.errors(), 0);
    assert_eq!(report.warnings(), 1);
    assert_eq!(report.entries[1].dispatch, VectorDispatch::NotInstalled);
}

#[test]
fn bare_reti_slot_is_installed() {
    let src = "
        jmp main
        reti
        nop
    main:
        rjmp main
    ";
    let cfg = FirmwareConfig::bare("fw", 2, 0x10FF, 0x1000);
    let report = check_firmware(&asm(src), &cfg);
    assert!(report.is_clean(), "unexpected diags: {:?}", report.diags);
    assert_eq!(report.entries[1].target, "reti");
    // 4 dispatch + 4 reti.
    assert_eq!(report.entries[1].wcet, Some(WcetBound::Exact(8)));
}

#[test]
fn invalid_opcode_in_reachable_code() {
    let mut words = asm("jmp main\nmain: nop");
    // Patch the reachable nop into a word that decodes as nothing.
    assert!(matches!(decode(0x0001, 0).insn, Insn::Invalid(_)));
    words[2] = 0x0001;
    let cfg = FirmwareConfig::bare("fw", 1, 0x10FF, 0x1000);
    let report = check_firmware(&words, &cfg);
    assert!(classes(&report).contains(&FwDiagClass::InvalidOpcode));
}

#[test]
fn execution_running_off_the_image_is_flagged() {
    let cfg = FirmwareConfig::bare("fw", 1, 0x10FF, 0x1000);
    let report = check_firmware(&asm("jmp main\nmain: ldi r16, 1"), &cfg);
    assert!(classes(&report).contains(&FwDiagClass::RunsOffImage));
}

#[test]
fn ijmp_is_always_rejected() {
    let cfg = FirmwareConfig::bare("fw", 1, 0x10FF, 0x1000);
    let report = check_firmware(&asm("jmp main\nmain: ijmp"), &cfg);
    assert_eq!(classes(&report), vec![FwDiagClass::UnresolvedIndirect]);
}

#[test]
fn icall_without_declared_targets_is_rejected() {
    let cfg = FirmwareConfig::bare("fw", 1, 0x10FF, 0x1000);
    let report = check_firmware(&asm("jmp main\nmain: icall\nrjmp main"), &cfg);
    assert!(classes(&report).contains(&FwDiagClass::UnresolvedIndirect));
    // An unresolved call poisons the stack bound.
    assert_eq!(report.stack_bound, None);
}

#[test]
fn icall_through_declared_targets_is_analyzed() {
    let src = "
        jmp main
    main:
        icall
        rjmp main
    task:
        push r16
        pop r16
        ret
    ";
    let mut cfg = FirmwareConfig::bare("fw", 1, 0x10FF, 0x1000);
    cfg.indirect_targets = vec![(sym(src, "task"), "task".to_string())];
    let report = check_firmware(&asm(src), &cfg);
    assert!(report.is_clean(), "unexpected diags: {:?}", report.diags);
    // icall frame (2) + task's own push (1).
    assert_eq!(report.stack_bound, Some(3));
}

#[test]
fn recursion_is_rejected() {
    let cfg = FirmwareConfig::bare("fw", 1, 0x10FF, 0x1000);
    let report = check_firmware(&asm("jmp main\nmain: rcall main\nret"), &cfg);
    assert!(classes(&report).contains(&FwDiagClass::Recursion));
    assert_eq!(report.stack_bound, None);
}

#[test]
fn mutual_recursion_is_rejected() {
    let src = "
        jmp main
    main:
        rcall pong
        ret
    pong:
        rcall main
        ret
    ";
    let cfg = FirmwareConfig::bare("fw", 1, 0x10FF, 0x1000);
    let report = check_firmware(&asm(src), &cfg);
    assert!(classes(&report).contains(&FwDiagClass::Recursion));
}

#[test]
fn unbalanced_push_at_return_is_flagged() {
    let cfg = FirmwareConfig::bare("fw", 1, 0x10FF, 0x1000);
    let report = check_firmware(&asm("jmp main\nmain: push r16\nret"), &cfg);
    assert!(classes(&report).contains(&FwDiagClass::StackImbalance));
}

#[test]
fn conditionally_skipped_push_is_flagged_at_the_join() {
    let src = "
        jmp main
    main:
        sbrc r16, 0
        push r17
        nop
        rjmp main
    ";
    let cfg = FirmwareConfig::bare("fw", 1, 0x10FF, 0x1000);
    let report = check_firmware(&asm(src), &cfg);
    assert!(classes(&report).contains(&FwDiagClass::StackImbalance));
}

#[test]
fn isr_clobbering_a_register_is_flagged() {
    let src = "
        jmp main
        jmp tick
    main:
        rjmp main
    tick:
        ldi r18, 1
        reti
    ";
    let cfg = FirmwareConfig::bare("fw", 2, 0x10FF, 0x1000);
    let report = check_firmware(&asm(src), &cfg);
    assert_eq!(classes(&report), vec![FwDiagClass::IsrClobbersRegister]);
    assert!(report.diags[0].message.contains("r18"));
}

#[test]
fn isr_clobbering_flags_is_flagged() {
    let src = "
        jmp main
        jmp tick
    main:
        rjmp main
    tick:
        push r18
        ldi r18, 1
        inc r18
        pop r18
        reti
    ";
    let cfg = FirmwareConfig::bare("fw", 2, 0x10FF, 0x1000);
    let report = check_firmware(&asm(src), &cfg);
    assert_eq!(classes(&report), vec![FwDiagClass::IsrClobbersSreg]);
}

#[test]
fn sleep_with_interrupts_provably_off_is_flagged() {
    // Reset enters with I clear and nothing ever sets it.
    let cfg = FirmwareConfig::bare("fw", 1, 0x10FF, 0x1000);
    let report = check_firmware(&asm("jmp main\nmain: sleep\nrjmp main"), &cfg);
    assert!(classes(&report).contains(&FwDiagClass::SleepWhileIrqOff));
}

#[test]
fn sleep_after_sei_is_clean() {
    let cfg = FirmwareConfig::bare("fw", 1, 0x10FF, 0x1000);
    let report = check_firmware(&asm("jmp main\nmain: sei\nsleep\nrjmp main"), &cfg);
    assert!(
        !classes(&report).contains(&FwDiagClass::SleepWhileIrqOff),
        "false positive: {:?}",
        report.diags
    );
}

#[test]
fn sei_inside_an_isr_warns_about_nesting() {
    let src = "
        jmp main
        jmp tick
    main:
        rjmp main
    tick:
        sei
        reti
    ";
    let cfg = FirmwareConfig::bare("fw", 2, 0x10FF, 0x1000);
    let report = check_firmware(&asm(src), &cfg);
    assert!(classes(&report).contains(&FwDiagClass::IsrReenablesIrq));
}

#[test]
fn reachable_code_overlapping_the_table_is_flagged() {
    // Two vectors are configured but `main` sits in slot 1's words.
    let src = "
        jmp main
    main:
        ldi r16, 0
        rjmp main
    ";
    let cfg = FirmwareConfig::bare("fw", 2, 0x10FF, 0x1000);
    let report = check_firmware(&asm(src), &cfg);
    let classes = classes(&report);
    assert!(classes.contains(&FwDiagClass::VectorOverlap));
    assert!(classes.contains(&FwDiagClass::UnreachableVector));
}

#[test]
fn isr_over_cycle_budget_is_flagged() {
    let src = "
        jmp main
        jmp tick
    main:
        rjmp main
    tick:
        reti
    ";
    let mut cfg = FirmwareConfig::bare("fw", 2, 0x10FF, 0x1000);
    cfg.isr_budget = Some(10); // dispatch 4 + jmp 3 + reti 4 = 11
    let report = check_firmware(&asm(src), &cfg);
    assert_eq!(classes(&report), vec![FwDiagClass::WcetOverrun]);
    cfg.isr_budget = Some(11);
    assert!(check_firmware(&asm(src), &cfg).is_clean());
}

#[test]
fn immediate_counted_loop_is_bounded_exactly() {
    let src = "
        jmp main
        jmp tick
    main:
        rjmp main
    tick:
        push r17
        in r17, 0x3F
        push r17
        ldi r17, 4
    lp:
        dec r17
        brne lp
        pop r17
        out 0x3F, r17
        pop r17
        reti
    ";
    let cfg = FirmwareConfig::bare("fw", 2, 0x10FF, 0x1000);
    let report = check_firmware(&asm(src), &cfg);
    assert!(report.is_clean(), "unexpected diags: {:?}", report.diags);
    // 4 dispatch + 3 jmp + 5 prologue + 1 ldi + 3 iterations of
    // (dec + brne-taken) + final (dec + brne-untaken) + 5 epilogue
    // + 4 reti = 4+3+5+1+9+2+5+4.
    assert_eq!(report.entries[1].wcet, Some(WcetBound::Exact(33)));
}

#[test]
fn ldi_zero_counts_256_iterations() {
    let src = "
        jmp main
        jmp tick
    main:
        rjmp main
    tick:
        push r17
        in r17, 0x3F
        push r17
        ldi r17, 0
    lp:
        dec r17
        brne lp
        pop r17
        out 0x3F, r17
        pop r17
        reti
    ";
    let cfg = FirmwareConfig::bare("fw", 2, 0x10FF, 0x1000);
    let report = check_firmware(&asm(src), &cfg);
    assert!(report.is_clean(), "unexpected diags: {:?}", report.diags);
    // 4 + 3 + 5 + 1 + 255*3 + 2 + 5 + 4 = 789.
    assert_eq!(report.entries[1].wcet, Some(WcetBound::Exact(789)));
}

#[test]
fn data_dependent_loop_in_isr_is_unbounded() {
    let src = "
        jmp main
        jmp tick
    main:
        rjmp main
    tick:
        push r17
        in r17, 0x3F
        push r17
        lds r17, 0x0200
    lp:
        dec r17
        brne lp
        pop r17
        out 0x3F, r17
        pop r17
        reti
    ";
    let cfg = FirmwareConfig::bare("fw", 2, 0x10FF, 0x1000);
    let report = check_firmware(&asm(src), &cfg);
    assert_eq!(classes(&report), vec![FwDiagClass::UnboundedLoop]);
    assert_eq!(report.entries[1].wcet, Some(WcetBound::Unbounded));
}

#[test]
fn counter_clobbered_inside_the_loop_defeats_the_bound() {
    let src = "
        jmp main
        jmp tick
    main:
        rjmp main
    tick:
        ldi r17, 4
    lp:
        inc r17
        dec r17
        brne lp
        reti
    ";
    let cfg = FirmwareConfig::bare("fw", 2, 0x10FF, 0x1000);
    let report = check_firmware(&asm(src), &cfg);
    assert!(classes(&report).contains(&FwDiagClass::UnboundedLoop));
}

#[test]
fn unbounded_loop_only_in_main_context_is_not_warned() {
    // The event-driven main loop never terminates by design; only
    // ISR-reachable loops must be bounded.
    let src = "
        jmp main
        jmp tick
    main:
        lds r17, 0x0200
    lp:
        dec r17
        brne lp
        rjmp main
    tick:
        reti
    ";
    let cfg = FirmwareConfig::bare("fw", 2, 0x10FF, 0x1000);
    let report = check_firmware(&asm(src), &cfg);
    assert!(report.is_clean(), "unexpected diags: {:?}", report.diags);
}

#[test]
fn whole_firmware_stack_overflow_is_flagged() {
    let src = "
        jmp main
        jmp tick
    main:
        rjmp main
    tick:
        push r16
        push r17
        pop r17
        pop r16
        reti
    ";
    // Interrupt frame (2) + two saves = 4 bytes > 3-byte region.
    let mut cfg = FirmwareConfig::bare("fw", 2, 0x10FF, 0x10FD);
    let report = check_firmware(&asm(src), &cfg);
    assert_eq!(classes(&report), vec![FwDiagClass::StackOverflow]);
    assert_eq!(report.stack_bound, Some(4));
    cfg.stack_low = 0x10FC;
    assert!(check_firmware(&asm(src), &cfg).is_clean());
}

#[test]
fn call_frames_count_toward_the_stack_bound() {
    let src = "
        jmp main
        jmp tick
    main:
        rjmp main
    tick:
        push r16
        rcall helper
        pop r16
        reti
    helper:
        push r17
        pop r17
        ret
    ";
    let cfg = FirmwareConfig::bare("fw", 2, 0x10FF, 0x1000);
    let report = check_firmware(&asm(src), &cfg);
    assert!(report.is_clean(), "unexpected diags: {:?}", report.diags);
    // save (1) + call frame (2) + helper save (1).
    assert_eq!(report.entries[1].stack, Some(4));
    assert_eq!(report.stack_bound, Some(6));
}

#[test]
fn callee_clobbers_propagate_to_isr_lints() {
    let src = "
        jmp main
        jmp tick
    main:
        rjmp main
    tick:
        rcall helper
        reti
    helper:
        ldi r20, 7
        ret
    ";
    let cfg = FirmwareConfig::bare("fw", 2, 0x10FF, 0x1000);
    let report = check_firmware(&asm(src), &cfg);
    assert_eq!(classes(&report), vec![FwDiagClass::IsrClobbersRegister]);
    assert!(report.diags[0].message.contains("r20"));
}

#[test]
fn sreg_roundtrip_through_a_callee_is_clean() {
    // The post_task critical-section idiom: save SREG, cli, work,
    // restore — the caller sees no net clobber of I or the flags.
    let src = "
        jmp main
        jmp tick
    main:
        rjmp main
    tick:
        push r16
        push r17
        in r16, 0x3F
        cli
        ldi r17, 1
        out 0x3F, r16
        pop r17
        pop r16
        reti
    ";
    let cfg = FirmwareConfig::bare("fw", 2, 0x10FF, 0x1000);
    let report = check_firmware(&asm(src), &cfg);
    assert!(report.is_clean(), "unexpected diags: {:?}", report.diags);
}

#[test]
fn diagnostics_are_ordered_by_address() {
    let src = "
        jmp main
        jmp tick
    main:
        ijmp
    tick:
        ldi r18, 1
        reti
    ";
    let cfg = FirmwareConfig::bare("fw", 2, 0x10FF, 0x1000);
    let report = check_firmware(&asm(src), &cfg);
    let addrs: Vec<Option<u32>> = report.diags.iter().map(|d| d.addr).collect();
    let mut sorted = addrs.clone();
    sorted.sort_by_key(|a| a.unwrap_or(u32::MAX));
    assert_eq!(addrs, sorted);
}

#[test]
fn locations_render_relative_to_symbols() {
    let src = "
        jmp main
        jmp tick
    main:
        rjmp main
    tick:
        nop
        ijmp
        reti
    ";
    let mut cfg = FirmwareConfig::bare("fw", 2, 0x10FF, 0x1000);
    cfg.symbols = vec![(sym(src, "tick"), "tick".to_string())];
    let report = check_firmware(&asm(src), &cfg);
    let diag = report
        .diags
        .iter()
        .find(|d| d.class == FwDiagClass::UnresolvedIndirect)
        .unwrap();
    assert_eq!(diag.loc.as_deref(), Some("tick+0x0002"));
    assert!(diag.render("fw").contains("fw:tick+0x0002"));
}
