//! Cross-validation of the mcu8 whole-firmware analyzer against the
//! cycle-accurate simulator.
//!
//! The simulator is the ground truth. For every program here the
//! harness raises a real interrupt, measures the handler from the
//! 4-cycle dispatch through `reti`, and tracks the lowest stack pointer
//! it ever observes. The static contract under test:
//!
//! * an [`Exact`](WcetBound::Exact) WCET **equals** the measured cycle
//!   count (the abstract interpretation is exact on loop-free and
//!   immediate-counted code, not merely conservative);
//! * an [`UpperBound`](WcetBound::UpperBound) WCET covers every
//!   measured run, whichever way the data steers the branches;
//! * the per-vector stack figure plus the 2-byte interrupt frame is
//!   never less than the observed stack excursion, and the
//!   whole-firmware bound covers it too.
//!
//! Three property suites push past the hand-written programs: random
//! straight-line handlers (exact WCET, exact stack), random
//! immediate-counted loops (exact WCET), and random branchy handlers
//! (upper bound covers runs over several data seeds).

use ulp_isa::asm::Image;
use ulp_mcu8::{assemble, Bus, Cpu, FlatBus, SREG_I};
use ulp_testkit::{from_fn, prop_assert, prop_assert_eq, props, Rng};
use ulp_verify::{check_firmware, FirmwareConfig, FirmwareReport, WcetBound};

/// [`FlatBus`] plus a one-shot pending interrupt the harness arms.
struct IrqBus {
    bus: FlatBus,
    pending: Option<u8>,
}

impl Bus for IrqBus {
    fn fetch(&mut self, pc: u16) -> u16 {
        self.bus.fetch(pc)
    }
    fn read(&mut self, addr: u16) -> u8 {
        self.bus.read(addr)
    }
    fn write(&mut self, addr: u16, value: u8) {
        self.bus.write(addr, value)
    }
    fn io_read(&mut self, addr: u8) -> u8 {
        self.bus.io_read(addr)
    }
    fn io_write(&mut self, addr: u8, value: u8) {
        self.bus.io_write(addr, value)
    }
    fn pending_irq(&mut self) -> Option<u8> {
        self.pending.take()
    }
}

const STACK_TOP: u16 = 0x10FF;

/// Assemble to an image plus the analyzer's word view of it.
fn build(src: &str) -> (Image, Vec<u16>) {
    let image = assemble(src).expect("program assembles");
    let end = image.segments().iter().map(|s| s.end()).max().unwrap_or(0);
    let bytes = image
        .flatten(end.next_multiple_of(2) as usize, 0)
        .expect("image flattens from origin 0");
    let words = bytes
        .chunks(2)
        .map(|c| u16::from_le_bytes([c[0], c[1]]))
        .collect();
    (image, words)
}

fn analyze(words: &[u16]) -> FirmwareReport {
    check_firmware(words, &FirmwareConfig::bare("xval", 2, STACK_TOP, 0x1000))
}

/// One measured interrupt service: dispatch through `reti`.
struct Measured {
    /// Cycles from (and including) the 4-cycle dispatch to `reti`.
    cycles: u64,
    /// Bytes below the pre-interrupt SP ever touched (includes the
    /// 2-byte return-address frame the dispatch pushes).
    stack: u32,
}

/// Boot `image`, wait for `main` to execute `sei`, then raise vector 1
/// and measure the handler. `seed_ram` lets data-driven tests steer the
/// branches the handler will take.
fn run_isr(image: &Image, seed_ram: &[(u16, u8)]) -> Measured {
    let mut bus = IrqBus {
        bus: FlatBus::new(0x1100),
        pending: None,
    };
    bus.bus.load_image(image);
    for &(addr, value) in seed_ram {
        bus.bus.ram_mut()[addr as usize] = value;
    }
    let mut cpu = Cpu::new();
    cpu.sp = STACK_TOP;
    for _ in 0..100 {
        if cpu.flag(SREG_I) {
            break;
        }
        cpu.step(&mut bus);
    }
    assert!(cpu.flag(SREG_I), "main never enabled interrupts");
    bus.pending = Some(1);
    let sp0 = cpu.sp;
    let mut min_sp = sp0;
    let dispatch = cpu.step(&mut bus);
    assert_eq!(dispatch, 4, "interrupt dispatch costs 4 cycles");
    assert!(!cpu.flag(SREG_I), "dispatch clears I");
    min_sp = min_sp.min(cpu.sp);
    let mut cycles = dispatch as u64;
    for _ in 0..1_000_000 {
        if cpu.flag(SREG_I) && cpu.sp == sp0 {
            break;
        }
        assert!(!cpu.halted(), "handler halted the CPU");
        cycles += cpu.step(&mut bus) as u64;
        min_sp = min_sp.min(cpu.sp);
    }
    assert!(
        cpu.flag(SREG_I) && cpu.sp == sp0,
        "handler never returned (pc={:#06x} sp={:#06x})",
        cpu.pc,
        cpu.sp
    );
    Measured {
        cycles,
        stack: (sp0 - min_sp) as u32,
    }
}

/// Assert the vector-1 static figures cover (or, for `Exact` WCET,
/// equal) one measured run.
fn assert_covers(report: &FirmwareReport, measured: &Measured) {
    assert!(report.is_clean(), "{:?}", report.diags);
    let entry = &report.entries[1];
    match entry.wcet.expect("vector 1 is installed") {
        WcetBound::Exact(c) => assert_eq!(measured.cycles, c, "exact WCET must match"),
        WcetBound::UpperBound(c) => {
            assert!(
                measured.cycles <= c,
                "measured {} cycles above static bound {c}",
                measured.cycles
            );
        }
        WcetBound::Unbounded => panic!("handler should have a WCET bound"),
    }
    let stack = entry.stack.expect("stack height is known") + 2;
    assert!(
        measured.stack <= stack,
        "observed {}-byte excursion above static {stack}",
        measured.stack
    );
    let bound = report.stack_bound.expect("whole-firmware bound exists");
    assert!(measured.stack <= bound, "whole-firmware stack bound violated");
}

/// Wrap a handler body in the two-vector firmware skeleton: saves for
/// r16–r19 and SREG, an idle main loop, and the leaf/chain subroutines
/// the body generators may call into.
fn firmware(body: &str) -> String {
    format!(
        "
            jmp main
            jmp isr
        main:
            sei
        idle:
            rjmp idle
        isr:
            push r16
            in r16, 0x3F
            push r16
            push r17
            push r18
            push r19
{body}
            pop r19
            pop r18
            pop r17
            pop r16
            out 0x3F, r16
            pop r16
            reti
        leaf:
            push r20
            ldi r20, 7
            sts 0x0202, r20
            pop r20
            ret
        chain:
            push r20
            push r21
            rcall leaf
            pop r21
            pop r20
            ret
        "
    )
}

fn check_body(body: &str, seed_ram: &[(u16, u8)]) -> (FirmwareReport, Measured) {
    let (image, words) = build(&firmware(body));
    let report = analyze(&words);
    let measured = run_isr(&image, seed_ram);
    assert_covers(&report, &measured);
    (report, measured)
}

// ---------------------------------------------------------------------
// Hand-written programs: one per analysis regime.
// ---------------------------------------------------------------------

#[test]
fn straight_line_wcet_and_stack_are_exact() {
    let (report, measured) = check_body(
        "
            ldi r17, 21
            lsl r17
            sts 0x0200, r17
            lds r18, 0x0201
            rcall chain
        ",
        &[],
    );
    let entry = &report.entries[1];
    assert!(
        matches!(entry.wcet, Some(WcetBound::Exact(_))),
        "loop-free code gets an exact WCET, got {:?}",
        entry.wcet
    );
    // Single path: the static stack figure is attained, not just safe.
    assert_eq!(measured.stack, entry.stack.unwrap() + 2);
}

#[test]
fn counted_loop_wcet_is_exact() {
    for (k, label) in [(4u32, "ldi r17, 4"), (256, "ldi r17, 0")] {
        let (report, measured) = check_body(
            &format!(
                "
            {label}
        lp:
            sts 0x0200, r18
            dec r17
            brne lp
        "
            ),
            &[],
        );
        let entry = &report.entries[1];
        let WcetBound::Exact(c) = entry.wcet.unwrap() else {
            panic!("{k}-iteration counted loop should be exact: {:?}", entry.wcet);
        };
        assert_eq!(measured.cycles, c, "K={k}");
    }
}

#[test]
fn branchy_handler_bound_covers_both_arms() {
    let body = "
            lds r18, 0x0201
            sbrc r18, 0
            sts 0x0200, r19
            cpi r18, 3
            brne skip1
            ldi r19, 9
            inc r19
        skip1:
    ";
    let mut worst = 0;
    for seed in [0u8, 1, 3, 0xFF] {
        let (report, measured) = check_body(body, &[(0x0201, seed)]);
        assert!(
            matches!(report.entries[1].wcet, Some(WcetBound::UpperBound(_))),
            "conditional code yields an upper bound"
        );
        worst = worst.max(measured.cycles);
    }
    // The bound is not vacuous: some seed gets within the skip-cost
    // slack of it (the longest arm really is reachable).
    let (report, _) = check_body(body, &[(0x0201, 3)]);
    let bound = report.entries[1].wcet.unwrap().cycles().unwrap();
    assert!(worst + 4 >= bound, "worst run {worst} far below bound {bound}");
}

#[test]
fn early_exit_loop_bound_covers_every_seed() {
    // An immediate-counted loop with a data-dependent break: still
    // bounded (the counter dominates), but only as an upper bound.
    let body = "
            lds r18, 0x0201
            ldi r17, 8
        lp:
            sbrc r18, 0
            rjmp lp_done
            sts 0x0200, r17
            dec r17
            brne lp
        lp_done:
    ";
    for seed in [0u8, 1] {
        let (report, measured) = check_body(body, &[(0x0201, seed)]);
        let bound = report.entries[1].wcet.unwrap();
        assert!(
            matches!(bound, WcetBound::UpperBound(_)),
            "conditional loop body forces an upper bound, got {bound:?}"
        );
        if seed == 1 {
            // Break on the first iteration: far under the 8-trip bound.
            assert!(measured.cycles * 2 < bound.cycles().unwrap());
        }
    }
}

#[test]
fn call_chain_stack_bound_is_attained() {
    let (report, measured) = check_body("            rcall chain\n", &[]);
    // 2 (frame) + 5 saves + rcall(2) + chain pushes(2) + rcall(2) +
    // leaf push(1) = 14 bytes, every one of them really touched.
    assert_eq!(measured.stack, 14);
    assert_eq!(report.entries[1].stack, Some(12));
}

// ---------------------------------------------------------------------
// Properties: generated handlers, one suite per analysis regime.
// ---------------------------------------------------------------------

/// Straight-line instructions safe in the saved-register handler: only
/// r17–r19 written, no control flow, deterministic timing.
fn straight_insn(rng: &mut Rng) -> String {
    match rng.gen_range(0u8..10) {
        0 => "nop".to_string(),
        1 => format!("ldi r17, {}", rng.next_u64() as u8),
        2 => "mov r19, r17".to_string(),
        3 => "add r17, r18".to_string(),
        4 => "eor r18, r19".to_string(),
        5 => "lsl r17".to_string(),
        6 => "sts 0x0200, r17".to_string(),
        7 => "lds r18, 0x0201".to_string(),
        8 => "out 0x10, r17".to_string(),
        _ => "in r18, 0x10".to_string(),
    }
}

fn arb_straight_body() -> impl ulp_testkit::Gen<Value = String> {
    from_fn(|rng: &mut Rng| {
        let mut body = String::new();
        for _ in 0..rng.gen_range(0usize..12) {
            let line = match rng.gen_range(0u8..8) {
                0 => "rcall leaf".to_string(),
                1 => "rcall chain".to_string(),
                _ => straight_insn(rng),
            };
            body.push_str(&format!("            {line}\n"));
        }
        body
    })
}

props! {
    /// Loop-free handlers: clean report, exact WCET equal to the
    /// measured cycles, and the stack figure attained exactly (every
    /// instruction on the single path executes).
    #[test]
    fn straight_line_handlers_measure_exactly(body in arb_straight_body()) {
        let (report, measured) = check_body(&body, &[]);
        let entry = &report.entries[1];
        let wcet = entry.wcet.unwrap();
        prop_assert!(
            matches!(wcet, WcetBound::Exact(_)),
            "expected exact, got {:?}", wcet
        );
        prop_assert_eq!(measured.cycles, wcet.cycles().unwrap());
        prop_assert_eq!(measured.stack, entry.stack.unwrap() + 2);
    }
}

fn arb_counted_loop_body() -> impl ulp_testkit::Gen<Value = String> {
    from_fn(|rng: &mut Rng| {
        // K = 0 encodes 256 trips; keep most loops short.
        let k = if rng.gen_range(0u8..8) == 0 {
            0
        } else {
            rng.gen_range(1u64..=9) as u8
        };
        let mut body = format!("            ldi r17, {k}\n        lp:\n");
        for _ in 0..rng.gen_range(0usize..4) {
            // The loop body must not write the counter: r18/r19 only.
            let line = match rng.gen_range(0u8..6) {
                0 => "nop".to_string(),
                1 => "mov r19, r18".to_string(),
                2 => "inc r19".to_string(),
                3 => "sts 0x0200, r18".to_string(),
                4 => "lds r18, 0x0201".to_string(),
                _ => "rcall leaf".to_string(),
            };
            body.push_str(&format!("            {line}\n"));
        }
        body.push_str("            dec r17\n            brne lp\n");
        body
    })
}

props! {
    /// Immediate-counted loops: the trip count is recovered and the
    /// WCET is exact — equal to the measured cycles, every time.
    #[test]
    fn counted_loop_handlers_measure_exactly(body in arb_counted_loop_body()) {
        let (report, measured) = check_body(&body, &[]);
        let wcet = report.entries[1].wcet.unwrap();
        prop_assert!(
            matches!(wcet, WcetBound::Exact(_)),
            "expected exact, got {:?}", wcet
        );
        prop_assert_eq!(measured.cycles, wcet.cycles().unwrap());
    }
}

fn arb_branchy_body() -> impl ulp_testkit::Gen<Value = String> {
    from_fn(|rng: &mut Rng| {
        let mut body = String::from("            lds r18, 0x0201\n");
        for i in 0..rng.gen_range(1usize..4) {
            match rng.gen_range(0u8..3) {
                0 => {
                    // Bit-skip over a 1- or 2-word instruction.
                    let op = if rng.gen_range(0u8..2) == 0 {
                        "inc r19"
                    } else {
                        "sts 0x0200, r19"
                    };
                    let skip = if rng.gen_range(0u8..2) == 0 {
                        "sbrc"
                    } else {
                        "sbrs"
                    };
                    let bit = rng.gen_range(0u64..8);
                    body.push_str(&format!(
                        "            {skip} r18, {bit}\n            {op}\n"
                    ));
                }
                1 => {
                    // Compare/branch diamond with an asymmetric arm.
                    let k = rng.next_u64() as u8;
                    body.push_str(&format!(
                        "            cpi r18, {k}\n            brne skip{i}\n"
                    ));
                    for _ in 0..rng.gen_range(1usize..3) {
                        body.push_str(&format!("            {}\n", straight_insn(rng)));
                    }
                    body.push_str(&format!("        skip{i}:\n"));
                }
                _ => body.push_str(&format!("            {}\n", straight_insn(rng))),
            }
        }
        body
    })
}

props! {
    /// Branchy handlers: whichever way the seed byte steers the
    /// branches, the static bound covers the measured run.
    #[test]
    fn branchy_handlers_stay_under_the_bound(body in arb_branchy_body()) {
        for seed in [0u8, 1, 0x55, 0xFF] {
            check_body(&body, &[(0x0201, seed)]);
        }
    }
}
