//! Cross-validation of the static checker against the simulator.
//!
//! The simulator is the ground truth: every *fault-class* diagnostic
//! must reproduce as a dynamic [`BusError`] when the ISR actually runs,
//! every warning-class diagnostic with a dynamic mirror must reproduce
//! as a [`BusLint`] observation, and clean programs must simulate
//! fault-free with the WCET bound *exactly equal* to the measured cycle
//! count (straight-line code, known power states: the abstract
//! interpretation is exact, not conservative).
//!
//! Two property suites push beyond the hand-written fixtures: a
//! constructive generator emits programs that should be clean, and a
//! chaotic generator emits arbitrary programs whose static fault
//! verdict must match the dynamic outcome.

use ulp_core::event_processor::{EpAction, EventProcessor};
use ulp_core::map;
use ulp_core::power::WakeLatency;
use ulp_core::slaves::{BusError, BusLint, ConstSensor, SensorBlock, Slaves};
use ulp_isa::ep::{encode_program, ComponentId, Instruction as I};
use ulp_sim::{Cycles, TraceBuffer};
use ulp_sram::{BankedSram, SramConfig};
use ulp_testkit::{from_fn, prop_assert, prop_assert_eq, props, Rng};
use ulp_verify::{check_isr, CheckContext, DiagClass, PowerState, Report};

/// Where the cross-validation harness loads ISR images (bank 2).
const ISR_ADDR: u16 = 0x0200;
/// The interrupt the harness raises (Timer0: its source is on at reset,
/// matching the checker's entry assumption).
const IRQ: u8 = 0;

/// Outcome of running one ISR image to completion on the real bus.
struct Sim {
    /// The first bus fault, if any (faults halt the system).
    fault: Option<BusError>,
    /// Non-idle cycles from dispatch to `READY`.
    cycles: u64,
    /// Bus-lint observations (lint mode enabled).
    lints: Vec<BusLint>,
    /// The machine afterwards, for power-state inspection.
    slaves: Slaves,
}

/// Run `bytes` as the ISR for [`IRQ`], stopping after the first event
/// completes (or the first fault).
fn simulate(bytes: &[u8], setup: impl FnOnce(&mut Slaves)) -> Sim {
    let mut slaves = Slaves::new(
        BankedSram::new(SramConfig::paper()),
        SensorBlock::new(Box::new(ConstSensor(77))),
        100_000.0,
    );
    slaves.set_lint(true);
    slaves.mem.load(ISR_ADDR, bytes);
    slaves
        .mem
        .load(map::EP_VECTORS + IRQ as u16 * 2, &ISR_ADDR.to_le_bytes());
    setup(&mut slaves);
    slaves.irqs.raise(IRQ);
    let mut ep = EventProcessor::new();
    let wake = WakeLatency::paper();
    let mut trace = TraceBuffer::new(64);
    let mut cycles = 0u64;
    let mut fault = None;
    for c in 0..200_000u64 {
        match ep.step(&mut slaves, true, &wake, &mut trace, Cycles(c)) {
            Ok(EpAction::Idle) => break,
            Ok(_) => {
                cycles += 1;
                // Stop at the first completed event: side-effecting
                // writes may have raised follow-on interrupts whose
                // (unprogrammed) ISRs are not under test.
                if ep.stats().events >= 1 {
                    break;
                }
            }
            Err(e) => {
                fault = Some(e);
                break;
            }
        }
    }
    let lints = slaves.take_lints();
    Sim {
        fault,
        cycles,
        lints,
        slaves,
    }
}

fn cid(id: u8) -> ComponentId {
    ComponentId::new(id).expect("5-bit id")
}

fn ctx() -> CheckContext {
    CheckContext::system_reset("xval")
        .with_irq(IRQ)
        .with_isr_addr(ISR_ADDR)
}

fn check(prog: &[I], ctx: &CheckContext) -> (Report, Vec<u8>) {
    let bytes = encode_program(prog).expect("encodes");
    (check_isr(&bytes, ctx), bytes)
}

fn classes(report: &Report) -> Vec<DiagClass> {
    report.diags.iter().map(|d| d.class).collect()
}

const MSGPROC: u8 = map::Component::MsgProc as u8;
const RADIO: u8 = map::Component::Radio as u8;
const SENSOR: u8 = map::Component::Sensor as u8;

// ---------------------------------------------------------------------
// Fixture cross-validation: one test per diagnostic class, static
// verdict first, then the dynamic reproduction.
// ---------------------------------------------------------------------

#[test]
fn powered_off_access_faults_dynamically() {
    let prog = [I::Read(map::MSG_BASE + map::MSG_STATUS), I::Terminate];
    let (report, bytes) = check(&prog, &ctx());
    assert_eq!(classes(&report), vec![DiagClass::PoweredOffAccess]);
    let sim = simulate(&bytes, |_| {});
    assert!(
        matches!(sim.fault, Some(BusError::Gated { slave: "msgproc", .. })),
        "{:?}",
        sim.fault
    );
}

#[test]
fn unmapped_access_faults_dynamically() {
    let prog = [I::Read(0x0900), I::Terminate];
    let (report, bytes) = check(&prog, &ctx());
    assert_eq!(classes(&report), vec![DiagClass::UnmappedAccess]);
    let sim = simulate(&bytes, |_| {});
    assert_eq!(sim.fault, Some(BusError::Unmapped { addr: 0x0900 }));
}

#[test]
fn transfer_overrun_faults_dynamically() {
    // 32 bytes into RADIO_TX_BUF+8 runs past the 32-byte buffer into
    // the hole before RADIO_RX_BUF.
    let prog = [
        I::Transfer {
            src: map::MSG_TX_BUF,
            dst: map::RADIO_TX_BUF + 8,
            len: 32,
        },
        I::Terminate,
    ];
    let ctx = ctx()
        .assume(MSGPROC, PowerState::On)
        .assume(RADIO, PowerState::On);
    let (report, bytes) = check(&prog, &ctx);
    assert_eq!(classes(&report), vec![DiagClass::TransferBounds]);
    let wake = WakeLatency::paper();
    let sim = simulate(&bytes, |s| {
        s.set_power(MSGPROC, true, &wake).unwrap();
        s.set_power(RADIO, true, &wake).unwrap();
    });
    assert_eq!(
        sim.fault,
        Some(BusError::Unmapped {
            addr: map::RADIO_TX_BUF + 32
        }),
        "first byte past the buffer faults"
    );
}

#[test]
fn bad_power_target_faults_dynamically() {
    for prog in [
        [I::SwitchOn(cid(7)), I::Terminate],
        [I::SwitchOff(cid(20)), I::Terminate],
        [I::SwitchOn(cid(map::Component::Mcu as u8)), I::Terminate],
    ] {
        let (report, bytes) = check(&prog, &ctx());
        assert_eq!(classes(&report), vec![DiagClass::BadPowerTarget]);
        let sim = simulate(&bytes, |_| {});
        assert!(
            matches!(sim.fault, Some(BusError::BadPowerTarget { .. })),
            "{prog:?}: {:?}",
            sim.fault
        );
    }
}

#[test]
fn isr_bank_gating_faults_dynamically() {
    // The ISR gates memory bank 2 — the bank its own code (and next
    // fetch) lives in.
    let prog = [
        I::SwitchOff(cid(map::Component::mem_bank(2))),
        I::Terminate,
    ];
    let (report, bytes) = check(&prog, &ctx());
    assert_eq!(classes(&report), vec![DiagClass::IsrBankGated]);
    let sim = simulate(&bytes, |_| {});
    assert!(
        matches!(sim.fault, Some(BusError::Sram(_))),
        "{:?}",
        sim.fault
    );
}

#[test]
fn missing_terminator_faults_dynamically() {
    // No terminator: execution runs into the zero-filled remainder of
    // main memory (0x00 decodes as `switchon timer`) and off the end.
    let bytes = encode_program(&[I::Read(map::TIMER_BASE + map::TIMER_COUNT_LO)]).unwrap();
    let report = check_isr(&bytes, &ctx());
    assert_eq!(classes(&report), vec![DiagClass::MissingTerminator]);
    let sim = simulate(&bytes, |_| {});
    assert!(sim.fault.is_some(), "runs off the end of memory");
}

#[test]
fn read_only_write_lints_dynamically() {
    let addr = map::TIMER_BASE + map::TIMER_COUNT_LO;
    let prog = [I::WriteI { addr, value: 9 }, I::Terminate];
    let (report, bytes) = check(&prog, &ctx());
    assert_eq!(classes(&report), vec![DiagClass::ReadOnlyWrite]);
    let sim = simulate(&bytes, |_| {});
    assert_eq!(sim.fault, None, "a lint, not a fault");
    assert_eq!(sim.lints, vec![BusLint::ReadOnlyWrite { addr }]);
}

#[test]
fn redundant_switch_lints_dynamically() {
    let prog = [
        I::SwitchOn(cid(SENSOR)),
        I::SwitchOn(cid(SENSOR)),
        I::SwitchOff(cid(SENSOR)),
        I::SwitchOff(cid(SENSOR)),
        I::Terminate,
    ];
    let (report, bytes) = check(&prog, &ctx());
    assert_eq!(
        classes(&report),
        vec![DiagClass::RedundantSwitch, DiagClass::RedundantSwitch]
    );
    let sim = simulate(&bytes, |_| {});
    assert_eq!(sim.fault, None);
    assert_eq!(
        sim.lints,
        vec![
            BusLint::RedundantSwitch {
                id: SENSOR,
                on: true
            },
            BusLint::RedundantSwitch {
                id: SENSOR,
                on: false
            },
        ]
    );
}

#[test]
fn left_on_at_exit_matches_dynamic_power_state() {
    let prog = [
        I::SwitchOn(cid(SENSOR)),
        I::Read(map::SENSOR_BASE + map::SENSOR_DATA),
        I::Terminate,
    ];
    let (report, bytes) = check(&prog, &ctx());
    assert_eq!(classes(&report), vec![DiagClass::LeftOnAtExit]);
    let sim = simulate(&bytes, |_| {});
    assert_eq!(sim.fault, None);
    assert!(
        sim.slaves.sensor.powered(),
        "the sensor really is still burning power"
    );
    // Declaring the hand-off silences the finding — and nothing else.
    let allowed = ctx().allow_left_on(SENSOR);
    let (report, _) = check(&prog, &allowed);
    assert!(report.is_clean(), "{:?}", report.diags);
}

#[test]
fn unknown_power_access_covers_both_dynamic_outcomes() {
    // The same program is a fault or clean depending on the sensor's
    // actual state — exactly why the checker can only warn.
    let prog = [I::Read(map::SENSOR_BASE + map::SENSOR_DATA), I::Terminate];
    let unknown = ctx().assume(SENSOR, PowerState::Unknown);
    let (report, bytes) = check(&prog, &unknown);
    assert_eq!(classes(&report), vec![DiagClass::UnknownPowerAccess]);
    let off = simulate(&bytes, |_| {});
    assert!(matches!(off.fault, Some(BusError::Gated { .. })));
    let wake = WakeLatency::paper();
    let on = simulate(&bytes, |s| {
        s.set_power(SENSOR, true, &wake).unwrap();
    });
    assert_eq!(on.fault, None);
}

#[test]
fn trailing_bytes_never_execute() {
    let mut bytes = encode_program(&[I::Terminate]).unwrap();
    bytes.extend([0x00, 0x00, 0x00]);
    let report = check_isr(&bytes, &ctx());
    assert_eq!(classes(&report), vec![DiagClass::TrailingBytes]);
    let sim = simulate(&bytes, |_| {});
    assert_eq!(sim.fault, None);
    assert_eq!(sim.cycles, report.wcet, "the tail costs nothing");
}

#[test]
fn wcet_overrun_is_real_measured_time() {
    // The WCET that overruns the budget is the *measured* cycle count.
    let prog = [
        I::Transfer {
            src: map::MSG_TX_BUF,
            dst: map::RADIO_TX_BUF,
            len: 8,
        },
        I::Terminate,
    ];
    let ctx = ctx()
        .assume(MSGPROC, PowerState::On)
        .assume(RADIO, PowerState::On)
        .with_budget(10);
    let (report, bytes) = check(&prog, &ctx);
    assert_eq!(classes(&report), vec![DiagClass::WcetOverrun]);
    let wake = WakeLatency::paper();
    let sim = simulate(&bytes, |s| {
        s.set_power(MSGPROC, true, &wake).unwrap();
        s.set_power(RADIO, true, &wake).unwrap();
    });
    assert_eq!(sim.fault, None);
    assert_eq!(sim.cycles, report.wcet);
    assert!(sim.cycles > 10, "really over budget");
}

#[test]
fn clean_figure5_isr_wcet_is_exact() {
    let prog = [
        I::SwitchOn(cid(SENSOR)),
        I::Read(map::SENSOR_BASE + map::SENSOR_DATA),
        I::SwitchOff(cid(SENSOR)),
        I::SwitchOn(cid(MSGPROC)),
        I::Write(map::MSG_BASE + map::MSG_SAMPLE_IN),
        I::WriteI {
            addr: map::MSG_BASE + map::MSG_CTRL,
            value: 1,
        },
        I::Terminate,
    ];
    let ctx = ctx().allow_left_on(MSGPROC);
    let (report, bytes) = check(&prog, &ctx);
    assert!(report.is_clean(), "{:?}", report.diags);
    let sim = simulate(&bytes, |_| {});
    assert_eq!(sim.fault, None);
    assert_eq!(sim.cycles, report.wcet, "exact, not an upper bound");
    assert!(sim.lints.is_empty());
}

// ---------------------------------------------------------------------
// Property: constructively clean programs are clean, fault-free, and
// their WCET equals the measured cycle count.
// ---------------------------------------------------------------------

/// Pick one element of a non-empty slice.
fn pick<T: Copy>(rng: &mut Rng, xs: &[T]) -> T {
    xs[rng.gen_range(0..xs.len())]
}

/// A program built to be clean: switches target components in the
/// correct state, accesses only powered components through safe
/// (side-effect-light) registers, keeps transfers inside their regions
/// and away from the ISR's own code, and gates everything it woke.
fn arb_clean_program() -> impl ulp_testkit::Gen<Value = Vec<I>> {
    from_fn(|rng: &mut Rng| {
        // Model of the switchable trio (msgproc, radio, sensor).
        let mut on = [false; 3];
        let idx = |id: u8| (id - MSGPROC) as usize;
        let mut prog = Vec::new();
        for _ in 0..rng.gen_range(0usize..10) {
            match rng.gen_range(0u8..6) {
                0 => {
                    let off: Vec<u8> =
                        [MSGPROC, RADIO, SENSOR].into_iter().filter(|&c| !on[idx(c)]).collect();
                    if !off.is_empty() {
                        let c = pick(rng, &off);
                        on[idx(c)] = true;
                        prog.push(I::SwitchOn(cid(c)));
                    }
                }
                1 => {
                    let lit: Vec<u8> =
                        [MSGPROC, RADIO, SENSOR].into_iter().filter(|&c| on[idx(c)]).collect();
                    if !lit.is_empty() {
                        let c = pick(rng, &lit);
                        on[idx(c)] = false;
                        prog.push(I::SwitchOff(cid(c)));
                    }
                }
                2 => {
                    // Reads of always-on or currently-on components.
                    let mut pool = vec![
                        map::TIMER_BASE + map::TIMER_COUNT_LO,
                        map::TIMER_BASE + map::TIMER_COUNT_HI,
                        map::FILTER_BASE + map::FILTER_RESULT,
                        map::FILTER_BASE + map::FILTER_THRESHOLD,
                        map::SYS_BASE + map::SYS_GPIO,
                        0x0400 + (rng.next_u64() as u16 % 0x0400),
                    ];
                    if on[idx(MSGPROC)] {
                        pool.push(map::MSG_BASE + map::MSG_STATUS);
                    }
                    if on[idx(RADIO)] {
                        pool.push(map::RADIO_BASE + map::RADIO_STATUS);
                    }
                    if on[idx(SENSOR)] {
                        pool.push(map::SENSOR_BASE + map::SENSOR_DATA);
                    }
                    prog.push(I::Read(pick(rng, &pool)));
                }
                3 => {
                    // Writes to read-write registers with no interrupt
                    // side effects.
                    let mut pool = vec![
                        map::TIMER_BASE + map::TIMER_RELOAD_LO,
                        map::TIMER_BASE + map::TIMER_RELOAD_HI,
                        map::FILTER_BASE + map::FILTER_THRESHOLD,
                    ];
                    if on[idx(RADIO)] {
                        pool.push(map::RADIO_BASE + map::RADIO_TX_LEN);
                    }
                    if on[idx(SENSOR)] {
                        pool.push(map::SENSOR_BASE + map::SENSOR_CHANNEL);
                    }
                    prog.push(I::WriteI {
                        addr: pick(rng, &pool),
                        value: rng.next_u64() as u8,
                    });
                }
                4 => {
                    // Memory-to-memory transfer clear of the ISR image.
                    let len = rng.gen_range(1u8..=32);
                    let src = 0x0400 + (rng.next_u64() as u16 % 0x0100);
                    let dst = 0x0600 + (rng.next_u64() as u16 % (0x0200 - len as u16));
                    prog.push(I::Transfer { src, dst, len });
                }
                _ => {
                    // Buffer-to-buffer transfer when both ends are lit.
                    if on[idx(MSGPROC)] && on[idx(RADIO)] {
                        let len = rng.gen_range(1u8..=32);
                        prog.push(I::Transfer {
                            src: map::MSG_TX_BUF,
                            dst: map::RADIO_TX_BUF,
                            len,
                        });
                    }
                }
            }
        }
        for c in [MSGPROC, RADIO, SENSOR] {
            if on[idx(c)] {
                prog.push(I::SwitchOff(cid(c)));
            }
        }
        prog.push(I::Terminate);
        prog
    })
}

props! {
    /// Constructively clean programs: zero diagnostics, no dynamic
    /// fault, no lints, and WCET exactly equal to measured cycles.
    #[test]
    fn clean_programs_simulate_clean_with_exact_wcet(prog in arb_clean_program()) {
        let (report, bytes) = check(&prog, &ctx());
        prop_assert!(report.is_clean(), "static: {:?}", report.diags);
        let sim = simulate(&bytes, |_| {});
        prop_assert_eq!(sim.fault.clone(), None);
        prop_assert!(sim.lints.is_empty(), "lints: {:?}", sim.lints);
        prop_assert_eq!(sim.cycles, report.wcet);
        prop_assert_eq!(report.insns as u64, prog.len() as u64);
    }
}

// ---------------------------------------------------------------------
// Property: arbitrary (chaotic) programs — the static fault verdict
// matches the dynamic outcome, and on clean runs the warning lints
// match the bus observations.
// ---------------------------------------------------------------------

/// An address pool biased towards interesting map features: registers,
/// buffers, region edges, holes, and plain memory.
fn arb_addr(rng: &mut Rng) -> u16 {
    match rng.gen_range(0u8..8) {
        0 => rng.next_u64() as u16 % 0x0900, // memory and the first hole
        1 => map::TIMER_BASE + (rng.next_u64() as u16 % 40),
        2 => map::FILTER_BASE + (rng.next_u64() as u16 % 12),
        3 => map::MSG_BASE + (rng.next_u64() as u16 % 20),
        4 => map::MSG_TX_BUF + (rng.next_u64() as u16 % 96), // spans RX buf + hole
        5 => map::RADIO_BASE + (rng.next_u64() as u16 % 12),
        6 => map::RADIO_TX_BUF + (rng.next_u64() as u16 % 96),
        _ => map::SENSOR_BASE + (rng.next_u64() as u16 % 8),
    }
}

/// Like [`arb_addr`] but excluding targets whose dynamic side effects
/// the static model deliberately does not track: the sys power/sleep
/// registers (they change power state behind the lattice's back) and
/// the ISR's own code page (self-modification).
fn arb_write_addr(rng: &mut Rng) -> u16 {
    loop {
        let a = arb_addr(rng);
        let in_sys = (map::SYS_BASE..map::SYS_BASE + 8).contains(&a);
        let in_code = (0x0100..0x0300).contains(&a);
        if !in_sys && !in_code {
            return a;
        }
    }
}

fn arb_chaotic_image() -> impl ulp_testkit::Gen<Value = Vec<u8>> {
    from_fn(|rng: &mut Rng| {
        let mut prog = Vec::new();
        for _ in 0..rng.gen_range(1usize..8) {
            prog.push(match rng.gen_range(0u8..6) {
                0 => I::SwitchOn(cid(pick(
                    rng,
                    &[0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 12, 15, 20, 31],
                ))),
                1 => I::SwitchOff(cid(pick(rng, &[0, 1, 2, 3, 4, 5, 7, 8, 9, 13, 16]))),
                2 => I::Read(arb_addr(rng)),
                3 => I::WriteI {
                    addr: arb_write_addr(rng),
                    value: rng.next_u64() as u8,
                },
                4 => I::Write(arb_write_addr(rng)),
                _ => {
                    let len = rng.gen_range(1u8..=32);
                    let src_pool = [
                        0x0400 + (rng.next_u64() as u16 % 0x0400),
                        map::MSG_TX_BUF + (rng.next_u64() as u16 % 40),
                        map::RADIO_RX_BUF + (rng.next_u64() as u16 % 40),
                    ];
                    let dst_pool = [
                        0x0300 + (rng.next_u64() as u16 % 0x0500),
                        map::MSG_RX_BUF + (rng.next_u64() as u16 % 40),
                        map::RADIO_TX_BUF + (rng.next_u64() as u16 % 40),
                    ];
                    I::Transfer {
                        src: pick(rng, &src_pool),
                        dst: pick(rng, &dst_pool),
                        len,
                    }
                }
            });
        }
        let mut bytes = Vec::new();
        // One program in eight runs off the end; one in eight carries a
        // dead tail after the terminator.
        match rng.gen_range(0u8..8) {
            0 => {
                // Run-off programs must not write into main memory: the
                // checker models the tail as zero-filled, and a planted
                // byte that happens to decode as `terminate` would make
                // the run-off dynamically survivable (self-extending
                // code is out of the analysis' scope by design).
                prog.retain(|insn| match insn {
                    I::Write(a) | I::WriteI { addr: a, .. } => *a >= map::MEM_SIZE,
                    I::Transfer { dst, .. } => *dst >= map::MEM_SIZE,
                    _ => true,
                });
            }
            1 => {
                prog.push(I::Terminate);
                for insn in &prog {
                    bytes.extend(insn.encode().unwrap());
                }
                bytes.extend([0u8; 3]);
                return bytes;
            }
            _ => prog.push(I::Terminate),
        }
        for insn in &prog {
            bytes.extend(insn.encode().unwrap());
        }
        bytes
    })
}

props! {
    /// Fault equivalence: the checker claims a fault class if and only
    /// if the simulator faults; on non-faulting runs the warning
    /// diagnostics with dynamic mirrors match the bus lints one-to-one.
    #[test]
    fn chaotic_programs_fault_verdicts_agree(image in arb_chaotic_image()) {
        let report = check_isr(&image, &ctx());
        let sim = simulate(&image, |_| {});
        prop_assert_eq!(
            report.has_fault_class(),
            sim.fault.is_some(),
            "static {:?} vs dynamic {:?}",
            classes(&report),
            sim.fault
        );
        if sim.fault.is_none() {
            let static_ro = report
                .diags
                .iter()
                .filter(|d| d.class == DiagClass::ReadOnlyWrite)
                .count();
            let static_redundant = report
                .diags
                .iter()
                .filter(|d| d.class == DiagClass::RedundantSwitch)
                .count();
            let dyn_ro = sim
                .lints
                .iter()
                .filter(|l| matches!(l, BusLint::ReadOnlyWrite { .. }))
                .count();
            let dyn_redundant = sim
                .lints
                .iter()
                .filter(|l| matches!(l, BusLint::RedundantSwitch { .. }))
                .count();
            prop_assert_eq!(static_ro, dyn_ro, "read-only-write lint mismatch");
            prop_assert_eq!(static_redundant, dyn_redundant, "redundant-switch lint mismatch");
            prop_assert_eq!(sim.cycles, report.wcet, "WCET must be exact on clean runs");
        }
    }
}
