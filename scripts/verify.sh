#!/usr/bin/env bash
# Full offline verification gate: exactly what CI runs.
#
#   scripts/verify.sh
#
# The workspace has zero external dependencies, so every step must pass
# with the network disabled and an empty Cargo registry. CARGO_NET_OFFLINE
# is exported (rather than relying on --offline alone) so any nested cargo
# invocation inherits it.
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

echo "== cargo build --release --offline =="
cargo build --release --offline

echo "== cargo build --release --workspace --all-targets --offline =="
# Everything must build in release mode too — benches, tests, examples —
# so a latent release-only breakage can't hide behind the debug gates.
cargo build --release --workspace --all-targets --offline

echo "== cargo test -q --offline (tier-1) =="
cargo test -q --offline

echo "== cargo test -q --workspace --offline =="
cargo test -q --workspace --offline

echo "== cargo test --doc --workspace --offline =="
cargo test -q --doc --workspace --offline

echo "== cargo clippy --workspace --all-targets -- -D warnings =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== cargo doc --no-deps --workspace (warnings denied) =="
RUSTDOCFLAGS="-D warnings" cargo doc -q --no-deps --workspace --offline

echo "== epcheck: shipped EP ISRs must lint clean =="
cargo run -q -p ulp-bench --bin epcheck --offline > /dev/null
cargo run -q -p ulp-bench --bin epcheck --offline -- --check > /dev/null

echo "== epcheck --mcu8: shipped Mica2 firmware must verify clean =="
# The whole-firmware analyzer: CFG recovery, stack bounds, interrupt-
# safety lints, and per-vector WCET against the one-tick budget. Exit
# status 1 on any error-severity finding in a shipped image.
cargo run -q -p ulp-bench --bin epcheck --offline -- --mcu8 > /dev/null
cargo run -q -p ulp-bench --bin epcheck --offline -- --mcu8 --check > /dev/null

echo "== telemetry trace dumper: deterministic + well-formed JSON =="
# --check runs the workload twice, asserts the Perfetto JSON / CSV /
# summary artifacts are byte-identical, and validates the JSON with the
# in-tree parser (ulp_sim::telemetry::validate_json).
trace_out=$(mktemp -d)
trap 'rm -rf "$trace_out"' EXIT
cargo run -q -p ulp-bench --bin trace --offline -- \
  --app stage4 --cycles 60000 --out "$trace_out/trace.json" --check > /dev/null
test -s "$trace_out/trace.json"
cargo run -q -p ulp-bench --bin trace --offline -- \
  --app mica2 --cycles 120000 --check > /dev/null

echo "== trace --perf: profiling must have no observer effect =="
# The profiled --check additionally double-runs with the profiler
# attached, asserts the deterministic counts table is identical, and
# compares CSV/summary byte-for-byte against an unprofiled run.
cargo run -q -p ulp-bench --bin trace --offline -- \
  --app stage4 --cycles 60000 --perf --check > /dev/null

echo "== fleet: parallel sweep must be thread-count invariant =="
# --check double-runs a small co-sim grid (1 worker, then N), asserts
# CSV/JSON byte-identity, and validates the JSON with the in-tree parser.
# --threads 2 forces a genuinely parallel second run even on single-core
# CI runners (the engine spawns the workers regardless); the wall-clock
# speedup is reported, never asserted.
cargo run -q --release -p ulp-bench --bin fleet --offline -- \
  --nodes 16 --seeds 4 --slots 4000 --threads 2 --check > /dev/null

echo "== fleet --progress: heartbeats must not touch stdout =="
# Run the same sweep with and without --progress and require stdout to
# be byte-identical — the NDJSON heartbeats go to stderr only.
cargo run -q --release -p ulp-bench --bin fleet --offline -- \
  --nodes 16 --seeds 4 --slots 4000 --threads 2 --check \
  > "$trace_out/fleet_plain.out" 2> /dev/null
cargo run -q --release -p ulp-bench --bin fleet --offline -- \
  --nodes 16 --seeds 4 --slots 4000 --threads 2 --check --progress \
  > "$trace_out/fleet_progress.out" 2> "$trace_out/fleet_progress.ndjson"
cmp "$trace_out/fleet_plain.out" "$trace_out/fleet_progress.out"
test -s "$trace_out/fleet_progress.ndjson"

echo "== fleet --dense: density sweep must be shard-count invariant =="
# The dense-network path shards 64-node spatial tiles across workers;
# --check double-runs the sweep (1 worker, then N) and asserts the
# merged CSV/JSON byte-identity, which also re-asserts per-tile packet
# conservation inside every tile run. Two densities cover both
# contention regimes (CSMA saturation and hidden terminals).
cargo run -q --release -p ulp-bench --bin fleet --offline -- \
  --dense --nodes 256 --density 25,400 --slots 8000 --threads 2 --check \
  > /dev/null

echo "== chaos: fault-injection campaign must be deterministic =="
# --check runs the campaign twice (1 worker, then 2), asserts CSV/JSON
# byte-identity (the campaign summary is a pure function of those rows),
# validates the JSON, and — per grid point — asserts the graceful-
# degradation invariants inline. Both binaries' --check also runs the
# grid twice more through an ephemeral campaign store (cold fill, then
# a reopened fully-warm serve) asserting the stored passes emit the
# exact same bytes and the warm pass executes zero points — so the
# verify gate above already exercises the store on the fleet grid too.
cargo run -q --release -p ulp-bench --bin chaos --offline -- \
  --seeds 2 --horizon 15000 --threads 2 --check > /dev/null

echo "== campaign store: sharded fill + merge must equal a plain run =="
# Two shard workers fill one store (disjoint segment files, disjoint
# grid points), then --merge serves the full grid from cache; its stdout
# must be byte-identical to a storeless run, and the merge pass must
# execute nothing (misses:0 in the --store-stats NDJSON line).
store_dir="$trace_out/campaign-store"
cargo run -q --release -p ulp-bench --bin fleet --offline -- \
  --nodes 16 --seeds 4 --slots 4000 --threads 2 \
  > "$trace_out/fleet_nostore.out" 2> /dev/null
cargo run -q --release -p ulp-bench --bin fleet --offline -- \
  --nodes 16 --seeds 4 --slots 4000 --threads 2 \
  --store "$store_dir" --shard 0/2 > /dev/null 2>&1
cargo run -q --release -p ulp-bench --bin fleet --offline -- \
  --nodes 16 --seeds 4 --slots 4000 --threads 2 \
  --store "$store_dir" --shard 1/2 > /dev/null 2>&1
cargo run -q --release -p ulp-bench --bin fleet --offline -- \
  --nodes 16 --seeds 4 --slots 4000 --threads 2 \
  --store "$store_dir" --merge --store-stats \
  > "$trace_out/fleet_merge.out" 2> "$trace_out/fleet_merge.err"
cmp "$trace_out/fleet_nostore.out" "$trace_out/fleet_merge.out"
grep -q '"misses":0' "$trace_out/fleet_merge.err"

echo "== bench smoke: one iteration per bench, BENCH JSON schema-checked =="
# Test mode (no --bench flag) runs every benchmark body once and still
# records a single timing; ULP_BENCH_DIR makes each harness emit its
# BENCH_<name>.json, which benchcheck gates for schema and finiteness.
# The checked-in baselines at the repo root get the same gate.
ULP_BENCH_DIR="$trace_out" cargo test -q --benches --workspace --offline > /dev/null
cargo run -q -p ulp-bench --bin benchcheck --offline -- \
  "$trace_out"/BENCH_*.json BENCH_*.json > /dev/null

echo "== dependency closure must be in-tree only =="
external=$(cargo tree --workspace --edges normal,build --prefix none --offline \
  | awk '{print $1}' | sort -u | grep -v '^ulp-' || true)
if [ -n "$external" ]; then
  echo "external crates crept into the default build graph:" >&2
  echo "$external" >&2
  exit 1
fi

echo "verify.sh: all checks passed"
