#!/usr/bin/env bash
# Full offline verification gate: exactly what CI runs.
#
#   scripts/verify.sh
#
# The workspace has zero external dependencies, so every step must pass
# with the network disabled and an empty Cargo registry. CARGO_NET_OFFLINE
# is exported (rather than relying on --offline alone) so any nested cargo
# invocation inherits it.
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

echo "== cargo build --release --offline =="
cargo build --release --offline

echo "== cargo test -q --offline (tier-1) =="
cargo test -q --offline

echo "== cargo test -q --workspace --offline =="
cargo test -q --workspace --offline

echo "== cargo clippy --all-targets -- -D warnings =="
cargo clippy --all-targets --offline -- -D warnings

echo "== dependency closure must be in-tree only =="
external=$(cargo tree --workspace --edges normal,build --prefix none --offline \
  | awk '{print $1}' | sort -u | grep -v '^ulp-' || true)
if [ -n "$external" ]; then
  echo "external crates crept into the default build graph:" >&2
  echo "$external" >&2
  exit 1
fi

echo "verify.sh: all checks passed"
