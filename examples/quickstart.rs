//! Quickstart: build the event-driven sensor node, run the stage-2
//! monitoring application (sample → threshold filter → packet → radio)
//! for ten simulated seconds, and print what happened and what it cost.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use ulp_node::apps::ulp::{monitoring, AppStage, MonitoringConfig, SamplePeriod};
use ulp_node::core_arch::slaves::RandomWalkSensor;
use ulp_node::core_arch::SystemConfig;
use ulp_node::net::Frame;
use ulp_node::sim::{Cycles, Engine};

fn main() {
    // One sample every 0.5 s (50 000 cycles at the 100 kHz system clock),
    // transmitted when it reaches the threshold.
    let program = monitoring(&MonitoringConfig {
        stage: AppStage::Filtered,
        period: SamplePeriod::Cycles(50_000),
        samples_per_packet: 1,
        threshold: 100,
    });
    println!(
        "Installed the stage-2 monitoring application: {} bytes of code.",
        program.code_size()
    );

    let sensor = RandomWalkSensor::new(110, 42); // wanders around the threshold
    let system = program.build_system(SystemConfig::default(), Box::new(sensor));

    let mut engine = Engine::new(system);
    let stats = engine.run_for(Cycles(1_000_000)); // 10 s
    let mut system = engine.into_machine();
    assert!(system.fault().is_none(), "fault: {:?}", system.fault());

    println!(
        "Simulated 10 s in {} stepped + {} fast-forwarded cycles.",
        stats.stepped.0, stats.skipped.0
    );
    let filter = &system.slaves().filter;
    println!(
        "Sampled {} times; {} passed the threshold filter.",
        filter.evaluations(),
        filter.passes()
    );
    for (at, bytes) in system.take_outbox() {
        let frame = Frame::decode(&bytes).expect("radio sends valid frames");
        println!(
            "  t={:6.2} s  frame seq={} sample={:?}",
            at.0 as f64 / 100_000.0,
            frame.seq,
            frame.payload
        );
    }

    println!("\nEnergy by component:");
    let clock = system.meter().clock();
    for c in system.meter().all() {
        println!(
            "  {:16} {:>12}   (avg {}, {:.2}% utilization)",
            c.name,
            c.energy.to_string(),
            c.average_power(clock),
            c.utilization() * 100.0
        );
    }
    println!(
        "\nTotal average power: {}   (the paper's target: 100 µW; its \
         estimate for this class of workload: <2 µW)",
        system.average_power()
    );
}
