//! The Great Duck Island workload (paper §3): sample every sensor every
//! 70 seconds, transmit one packet — duty cycle ~10⁻⁴. This example runs
//! a full simulated *week* (cycle-accurate, made tractable by the
//! idle-skip engine) and turns the measured average power into the
//! deployment-lifetime numbers that motivated the paper.
//!
//! ```sh
//! cargo run --release --example gdi_lifetime
//! ```

use ulp_node::apps::harvest::battery_lifetime;
use ulp_node::apps::ulp::{monitoring, AppStage, MonitoringConfig, SamplePeriod};
use ulp_node::core_arch::slaves::RandomWalkSensor;
use ulp_node::core_arch::SystemConfig;
use ulp_node::mica::power::{Mica2Power, SleepMode};
use ulp_node::sim::{Cycles, Engine, Voltage};

fn main() {
    // 70 s = 7 000 000 cycles at 100 kHz: timer 0 ticks 10 000 cycles,
    // chained timer 1 counts 700 of them.
    let program = monitoring(&MonitoringConfig {
        stage: AppStage::SampleSend,
        period: SamplePeriod::Chained {
            base: 10_000,
            count: 700,
        },
        samples_per_packet: 1,
        threshold: 0,
    });
    let config = SystemConfig {
        collect_outbox: false, // a week of packets need not be kept
        ..SystemConfig::default()
    };
    let system = program.build_system(config, Box::new(RandomWalkSensor::new(120, 7)));
    let mut engine = Engine::new(system);

    const WEEK_CYCLES: u64 = 7 * 86_400 * 100_000;
    println!("Simulating one week at the GDI cadence (one sample per 70 s)...");
    let stats = engine.run_for(Cycles(WEEK_CYCLES));
    let system = engine.machine();
    assert!(system.fault().is_none(), "fault: {:?}", system.fault());

    let sent = system.slaves().radio.stats().transmitted;
    println!(
        "  {} packets in 7 simulated days ({} stepped / {} skipped cycles).",
        sent, stats.stepped.0, stats.skipped.0
    );

    let avg = system.average_power();
    println!("  Average power: {avg}");

    // Lifetime on two AA cells (2850 mAh at 3 V), vs the Mica2 doing the
    // same job (its utilization normalised per §6.3).
    let aa = 2850.0;
    let v = Voltage::from_volts(3.0);
    let ours = battery_lifetime(aa, v, avg);
    let mica = Mica2Power::table1();
    let mica_avg = mica.cpu_average(1e-4 * 6.0, SleepMode::PowerSave);
    let theirs = battery_lifetime(aa, v, mica_avg);
    let years = |s: ulp_node::sim::Seconds| s.0 / (365.25 * 86_400.0);
    println!("\nLifetime on two AA cells (2850 mAh, 3 V):");
    println!("  this system:        {:8.1} years   ({avg})", years(ours));
    println!(
        "  Mica2 (power-save): {:8.2} years   ({mica_avg})",
        years(theirs)
    );
    println!(
        "\nThe paper's goal — 'continuous sensing for years to decades \
         without being touched' —\nis reachable at {avg}; the commodity \
         platform's sleep floor alone forbids it."
    );
}
