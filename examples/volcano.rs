//! The volcano-monitoring workload (paper §3): Harvard's Tungurahua
//! deployment sampled infrasound at 100 Hz and sent four radio messages
//! per second with the samples batched into packets — a *high* duty
//! cycle (~0.12) for a sensor network.
//!
//! The message processor's auto-prepare threshold batches samples in
//! hardware: the branch-less event processor just feeds it one sample
//! per timer alarm. (The paper's deployment used 25 samples per packet;
//! our 32-byte message buffers fit 21 samples behind the 802.15.4
//! header, so we send slightly more often — documented in DESIGN.md.)
//!
//! ```sh
//! cargo run --example volcano
//! ```

use ulp_node::apps::ulp::{monitoring, AppStage, MonitoringConfig, SamplePeriod};
use ulp_node::core_arch::slaves::SineSensor;
use ulp_node::core_arch::SystemConfig;
use ulp_node::net::Frame;
use ulp_node::sim::{Cycles, Engine};

fn main() {
    const SAMPLE_HZ: u64 = 100;
    const SAMPLES_PER_PACKET: u8 = 21;
    let period = (100_000 / SAMPLE_HZ) as u16; // 1 000 cycles

    let program = monitoring(&MonitoringConfig {
        stage: AppStage::SampleSend,
        period: SamplePeriod::Cycles(period),
        samples_per_packet: SAMPLES_PER_PACKET,
        threshold: 0,
    });

    // Infrasound: a slow pressure oscillation around mid-scale.
    let infrasound = SineSensor {
        period: 25_000, // 4 Hz at the 100 kHz clock
        amplitude: 90.0,
        offset: 128.0,
    };
    let system = program.build_system(SystemConfig::default(), Box::new(infrasound));

    let mut engine = Engine::new(system);
    engine.run_for(Cycles(3_000_000)); // 30 s
    let mut system = engine.into_machine();
    assert!(system.fault().is_none(), "fault: {:?}", system.fault());

    let sent = system.take_outbox();
    println!(
        "30 s of volcano monitoring: {} samples taken, {} packets sent \
         ({:.2} packets/s; the deployment sent 4/s with 25-sample packets).",
        system.slaves().sensor.conversions(),
        sent.len(),
        sent.len() as f64 / 30.0
    );
    let first = Frame::decode(&sent[0].1).expect("valid frame");
    println!(
        "First packet: {} samples, seq {} — e.g. {:?}...",
        first.payload.len(),
        first.seq,
        &first.payload[..6]
    );

    println!("\nPower at this (high) duty cycle:");
    let clock = system.meter().clock();
    let ids = system.meter_ids();
    for (name, id) in [
        ("event processor", ids.ep),
        ("timer", ids.timer),
        ("message processor", ids.msgproc),
        ("memory", ids.memory),
    ] {
        println!(
            "  {:18} {}",
            name,
            system.meter().stats(id).average_power(clock)
        );
    }
    println!("  {:18} {}", "total", system.average_power());
    println!(
        "\nEven at 100 samples/s the node stays well under the paper's \
         100 µW scavenging target."
    );
}
