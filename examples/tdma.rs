//! TDMA slot scheduling, entirely in the event processor — the paper
//! names this as a timer-subsystem use case: "alarm events ... may be
//! used ... in a Time-Division Multiple Access (TDMA) radio scheme"
//! (§4.2.2).
//!
//! Two ISRs implement the whole MAC:
//!
//! * a periodic timer marks the start of this node's slot: the ISR
//!   powers the radio, enables the receiver, and *programs a one-shot
//!   timer* for the slot's end — the event processor reconfiguring one
//!   slave from another's interrupt, no microcontroller involved;
//! * the one-shot fires at slot end: the ISR gates the radio off.
//!
//! Frames that arrive inside the slot are received; frames outside it
//! are missed — which is the point: the radio (the dominant real-world
//! consumer) is powered for `slot/frame` of the time.
//!
//! ```sh
//! cargo run --example tdma
//! ```

use ulp_node::core_arch::map::{self, Component, Irq};
use ulp_node::core_arch::slaves::ConstSensor;
use ulp_node::core_arch::{System, SystemConfig};
use ulp_node::isa::ep::{encode_program, ComponentId, Instruction as I};
use ulp_node::net::Frame;
use ulp_node::sim::{Cycles, Engine};

const FRAME_PERIOD: u16 = 10_000; // 100 ms TDMA frame
const SLOT_LEN: u16 = 1_000; // 10 ms listening slot

fn build_node() -> System {
    let mut sys = System::new(SystemConfig::default(), Box::new(ConstSensor(0)));
    let radio = ComponentId::new(Component::Radio as u8).unwrap();
    let timer1 = map::TIMER_BASE + map::TIMER_STRIDE; // slot-end one-shot

    // Slot start: radio up + listening, then arm the slot-end one-shot.
    let isr_open = encode_program(&[
        I::SwitchOn(radio),
        I::WriteI {
            addr: map::RADIO_BASE + map::RADIO_CTRL,
            value: 2, // listen
        },
        I::WriteI {
            addr: timer1 + map::TIMER_RELOAD_LO,
            value: (SLOT_LEN & 0xFF) as u8,
        },
        I::WriteI {
            addr: timer1 + map::TIMER_RELOAD_HI,
            value: (SLOT_LEN >> 8) as u8,
        },
        I::WriteI {
            addr: timer1 + map::TIMER_CTRL,
            value: 0x09, // ENABLE | IRQ_EN: one-shot
        },
        I::Terminate,
    ]).unwrap();
    // Slot end: gate the radio.
    let isr_close = encode_program(&[I::SwitchOff(radio), I::Terminate]).unwrap();
    // Received frames inside the slot: just acknowledge the event (a
    // real application would chain into the message processor here).
    let isr_rx = encode_program(&[I::Read(map::RADIO_BASE + map::RADIO_RX_LEN), I::Terminate]).unwrap();

    sys.load(0x0100, &isr_open);
    sys.load(0x0130, &isr_close);
    sys.load(0x0140, &isr_rx);
    sys.install_ep_isr(Irq::Timer0.id(), 0x0100);
    sys.install_ep_isr(Irq::Timer1.id(), 0x0130);
    sys.install_ep_isr(Irq::RadioRxDone.id(), 0x0140);
    sys.slaves_mut().timer.configure_periodic(0, FRAME_PERIOD);
    sys
}

fn main() {
    let mut sys = build_node();

    // Traffic: one frame per 2 500 cycles — only arrivals that land in
    // the node's 10%-duty slot should be received.
    let mut scheduled = 0u32;
    for i in 1..=38u64 {
        let at = i * 2_500 + 137;
        let f = Frame::data(0x22, 0x0009, 0x0001, i as u8, &[i as u8]).unwrap();
        sys.schedule_rx(Cycles(at), f.encode());
        scheduled += 1;
    }

    let mut engine = Engine::new(sys);
    engine.run_for(Cycles(100_000)); // 1 s = 10 TDMA frames
    let sys = engine.machine();
    assert!(sys.fault().is_none(), "fault: {:?}", sys.fault());

    let radio = sys.slaves().radio.stats();
    let ids = sys.meter_ids();
    let radio_stats = sys.meter().stats(ids.radio);
    let listening_fraction = radio_stats.utilization();
    println!(
        "TDMA: {SLOT_LEN}-cycle slot in a {FRAME_PERIOD}-cycle frame \
         (nominal radio duty {:.0}%).",
        100.0 * SLOT_LEN as f64 / FRAME_PERIOD as f64
    );
    println!(
        "Scheduled {scheduled} arrivals; received {} in-slot, missed {} \
         out-of-slot.",
        radio.received, radio.missed
    );
    println!(
        "Measured radio-on fraction: {:.1}% (powered {} of {} cycles).",
        listening_fraction * 100.0,
        radio_stats.mode_cycles[0].0,
        ulp_node::sim::Simulatable::now(sys).0,
    );
    println!(
        "Event-processor events: {} (two timer ISRs per frame plus one \
         per reception); average system power {}.",
        sys.ep().stats().events,
        sys.average_power()
    );
    assert!(radio.received >= 3 && radio.missed > radio.received);
    assert!((0.08..0.16).contains(&listening_fraction));
    println!(
        "\nThe whole MAC is two short ISRs, with the microcontroller \
         never powered."
    );
}
