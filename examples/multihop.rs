//! Multi-hop network co-simulation: a line of four relay nodes floods
//! sensor readings towards a base station, exercising the message
//! processor's forwarding path and duplicate-suppressing CAM (the
//! paper's application 3) across *multiple* cycle-accurate node
//! instances joined by the shared lossy medium.
//!
//! Topology (single collision domain; flooding with dedup):
//!
//! ```text
//!   node 2 ──▶ node 3 ──▶ node 4 ──▶ node 5 ──▶ base (address 0)
//! ```
//!
//! ```sh
//! cargo run --example multihop
//! ```

use ulp_node::apps::ulp::{monitoring, AppStage, MonitoringConfig, SamplePeriod};
use ulp_node::core_arch::slaves::ConstSensor;
use ulp_node::core_arch::{System, SystemConfig};
use ulp_node::net::{Frame, Medium, MediumConfig};
use ulp_node::sim::{Cycles, Simulatable, StepOutcome};

const NODES: u16 = 4;
const SLOT_US: u64 = 10; // one 100 kHz cycle

fn make_node(address: u16, sampler: bool) -> System {
    let program = monitoring(&MonitoringConfig {
        stage: AppStage::Forwarding,
        // The far node samples briskly; relays sample rarely.
        period: SamplePeriod::Cycles(if sampler { 20_000 } else { 60_000 }),
        samples_per_packet: 1,
        threshold: 0,
    });
    let config = SystemConfig {
        address,
        dest: 0x0000, // the base station
        ..SystemConfig::default()
    };
    program.build_system(config, Box::new(ConstSensor(77)))
}

fn main() {
    let mut medium = Medium::new(MediumConfig {
        loss_probability: 0.1, // flooding rides through 10% loss
        propagation_delay_us: 30,
        seed: 7,
    });

    // Node addresses 2..=5; node 2 samples, the rest relay.
    let mut nodes: Vec<(usize, System)> = (0..NODES)
        .map(|i| {
            let addr = 2 + i;
            let endpoint = medium.register();
            (endpoint, make_node(addr, i == 0))
        })
        .collect();
    let base_endpoint = medium.register();
    let mut base_received: Vec<Frame> = Vec::new();

    // Lock-step co-simulation: one cycle per node per iteration, frames
    // exchanged through the medium with real propagation timestamps.
    const HORIZON: u64 = 200_000; // 2 s
    for cycle in 1..=HORIZON {
        let now_us = cycle * SLOT_US;
        for (endpoint, node) in nodes.iter_mut() {
            // Deliver due frames from the medium into this node's radio.
            for d in medium.poll(*endpoint, now_us) {
                let at = Cycles(cycle + 1);
                node.schedule_rx(at, d.bytes);
            }
            if node.now() < Cycles(cycle) {
                let outcome = node.step();
                assert!(
                    !matches!(outcome, StepOutcome::Halted),
                    "node fault: {:?}",
                    node.fault()
                );
            }
            for (at, bytes) in node.take_outbox() {
                medium.transmit(*endpoint, at.0 * SLOT_US, &bytes);
            }
        }
        // The base station just listens.
        for d in medium.poll(base_endpoint, now_us) {
            if let Ok(f) = Frame::decode(&d.bytes) {
                base_received.push(f);
            }
        }
    }

    let stats = medium.stats();
    println!(
        "2 s of flooding across {} relays (10% loss): {} transmissions, \
         {} deliveries, {} losses.",
        NODES, stats.sent, stats.delivered, stats.lost
    );
    let mut unique: Vec<(u16, u8)> = base_received.iter().map(|f| (f.src, f.seq)).collect();
    unique.sort_unstable();
    unique.dedup();
    println!(
        "Base station heard {} frames ({} unique origin packets).",
        base_received.len(),
        unique.len()
    );
    for (endpoint, node) in &mut nodes {
        let m = node.slaves().msgproc.stats();
        println!(
            "  node {} (endpoint {endpoint}): forwarded {}, duplicates dropped {}, avg power {}",
            node.slaves().msgproc.address(),
            m.forwarded,
            m.duplicates,
            node.average_power()
        );
    }
    assert!(!unique.is_empty(), "the flood must reach the base station");
    println!(
        "\nDuplicate suppression in the message processor's CAM keeps the \
         flood from echoing,\nwith the microcontrollers asleep the whole \
         time."
    );
}
