//! Untethered operation: the paper's "holy grail" (§1) — a node that
//! runs indefinitely off scavenged energy. We measure the monitoring
//! application's real average power in simulation, then feed it to the
//! §2 harvesting models (a ~100 µW vibration harvester and a small solar
//! panel with day/night cycles) to check sustainability, and contrast
//! with a Mica2-class load.
//!
//! ```sh
//! cargo run --example untethered
//! ```

use ulp_node::apps::harvest::{
    simulate_untethered, Combined, SolarPanel, Storage, VibrationHarvester,
};
use ulp_node::apps::ulp::{monitoring, AppStage, MonitoringConfig, SamplePeriod};
use ulp_node::core_arch::slaves::RandomWalkSensor;
use ulp_node::core_arch::SystemConfig;
use ulp_node::mica::power::{Mica2Power, SleepMode};
use ulp_node::sim::{Cycles, Energy, Engine, Power, Seconds};

const DAY: f64 = 86_400.0;

fn main() {
    // Volcano-class monitoring: 10 samples/s, filtered, batched.
    let program = monitoring(&MonitoringConfig {
        stage: AppStage::Filtered,
        period: SamplePeriod::Cycles(10_000),
        samples_per_packet: 1,
        threshold: 50,
    });
    let system = program.build_system(
        SystemConfig::default(),
        Box::new(RandomWalkSensor::new(128, 99)),
    );
    let mut engine = Engine::new(system);
    engine.run_for(Cycles(6_000_000)); // one simulated minute
    let system = engine.machine();
    assert!(system.fault().is_none());
    let load = system.average_power();
    println!(
        "Measured node load at 10 samples/s (filtered): {load}  \
         ({} packets/min)",
        system.slaves().radio.stats().transmitted
    );

    // Vibration only (the paper's ~100 µW mote-scale figure).
    let vibration = VibrationHarvester {
        average: Power::from_uw(100.0),
    };
    let store = Storage::full(Energy::from_joules(0.5)); // small supercap
    let r = simulate_untethered(&vibration, store, load, Seconds(60.0), Seconds(DAY * 30.0));
    println!(
        "\n30 days on a 100 µW vibration harvester + 0.5 J supercap: \
         uptime {:.2}%  (harvested {}, consumed {})",
        r.uptime * 100.0,
        r.harvested,
        r.consumed
    );

    // Solar + vibration with night outages bridged by the store.
    let hybrid = Combined {
        a: SolarPanel {
            peak: Power::from_uw(250.0),
            day: Seconds(DAY),
        },
        b: VibrationHarvester {
            average: Power::from_uw(20.0),
        },
    };
    let r = simulate_untethered(
        &hybrid,
        Storage::full(Energy::from_joules(0.5)),
        load,
        Seconds(60.0),
        Seconds(DAY * 30.0),
    );
    println!(
        "30 days on solar(250 µW peak)+vibration(20 µW) + 0.5 J supercap: \
         uptime {:.2}%  (store never below {})",
        r.uptime * 100.0,
        r.min_level
    );

    // The commodity comparison: a Mica2 at the same work rate.
    let mica = Mica2Power::table1().cpu_average(0.02, SleepMode::PowerSave);
    let r = simulate_untethered(
        &vibration,
        Storage::full(Energy::from_joules(0.5)),
        mica,
        Seconds(60.0),
        Seconds(DAY),
    );
    println!(
        "\nMica2-class load ({mica}) on the same vibration harvester: \
         uptime {:.2}% — tethered to its battery.",
        r.uptime * 100.0
    );
    println!(
        "\nThe event-driven node runs indefinitely below the scavenging \
         budget;\nthis is the design target the whole architecture serves."
    );
}
