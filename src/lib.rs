#![warn(missing_docs)]
//! Facade crate for the ulp-node workspace.
//!
//! Re-exports every workspace crate under one roof so examples and
//! integration tests can depend on a single package. See the individual
//! crates for the real APIs:
//!
//! * [`sim`] — cycle-accurate simulation kernel (engine, energy metering)
//! * [`isa`] — event-processor ISA and assembler infrastructure
//! * [`sram`] — banked low-power SRAM model
//! * [`mcu8`] — 8-bit AVR-subset CPU core and assembler
//! * [`core_arch`] — the paper's event-driven system architecture
//! * [`mica`] — Mica2/ATmega128 + TinyOS-style baseline platform
//! * [`net`] — 802.15.4 frames, channel model, multi-node co-simulation
//! * [`tech`] — process-technology power/performance study
//! * [`apps`] — the paper's test applications and workloads

pub use ulp_apps as apps;
pub use ulp_core as core_arch;
pub use ulp_isa as isa;
pub use ulp_mcu8 as mcu8;
pub use ulp_mica as mica;
pub use ulp_net as net;
pub use ulp_sim as sim;
pub use ulp_sram as sram;
pub use ulp_tech as tech;
